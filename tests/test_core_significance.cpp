#include "core/significance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace cmfl::core {
namespace {

TEST(NormRatio, BasicRatio) {
  std::vector<float> u = {3.0f, 4.0f};   // ||u|| = 5
  std::vector<float> x = {6.0f, 8.0f};   // ||x|| = 10
  EXPECT_DOUBLE_EQ(norm_ratio_significance(u, x), 0.5);
}

TEST(NormRatio, ZeroModelNonzeroUpdateIsInfinite) {
  std::vector<float> u = {1.0f};
  std::vector<float> x = {0.0f};
  EXPECT_TRUE(std::isinf(norm_ratio_significance(u, x)));
}

TEST(NormRatio, BothZeroIsZero) {
  std::vector<float> u = {0.0f, 0.0f};
  std::vector<float> x = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(norm_ratio_significance(u, x), 0.0);
}

TEST(NormRatio, Validation) {
  std::vector<float> u = {1.0f};
  std::vector<float> x = {1.0f, 2.0f};
  EXPECT_THROW(norm_ratio_significance(u, x), std::invalid_argument);
  EXPECT_THROW(norm_ratio_significance({}, {}), std::invalid_argument);
}

// The paper's Fig. 2a argument: as updates shrink (training converges), the
// significance measure shrinks proportionally — NOT scale-invariant.
TEST(NormRatio, ScalesLinearlyWithUpdateMagnitude) {
  util::Rng rng(5);
  std::vector<float> u(64), x(64);
  for (auto& v : u) v = rng.uniform_f(-1.0f, 1.0f);
  for (auto& v : x) v = rng.uniform_f(-1.0f, 1.0f);
  const double base = norm_ratio_significance(u, x);
  std::vector<float> small = u;
  for (auto& v : small) v *= 0.01f;
  EXPECT_NEAR(norm_ratio_significance(small, x), base * 0.01, base * 1e-4);
}

TEST(ElementwiseRatio, SimpleCase) {
  std::vector<float> u = {1.0f, 2.0f};
  std::vector<float> x = {2.0f, 4.0f};
  // ratios are 0.5 each -> RMS 0.5
  EXPECT_NEAR(elementwise_ratio_significance(u, x), 0.5, 1e-12);
}

TEST(ElementwiseRatio, SkipsTinyModelEntries) {
  std::vector<float> u = {100.0f, 1.0f};
  std::vector<float> x = {1e-12f, 2.0f};
  // first coordinate skipped (|x| < eps) -> only 1/2 remains
  EXPECT_NEAR(elementwise_ratio_significance(u, x), 0.5, 1e-12);
}

TEST(ElementwiseRatio, AllSkippedGivesZero) {
  std::vector<float> u = {1.0f};
  std::vector<float> x = {0.0f};
  EXPECT_DOUBLE_EQ(elementwise_ratio_significance(u, x), 0.0);
}

TEST(ElementwiseRatio, Validation) {
  std::vector<float> u = {1.0f};
  std::vector<float> x = {1.0f, 2.0f};
  EXPECT_THROW(elementwise_ratio_significance(u, x), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::core

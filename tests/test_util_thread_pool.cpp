#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <vector>

namespace cmfl::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 42) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<long long> sum{0};
  const std::size_t n = 10000;
  pool.parallel_for(n, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n * (n - 1) / 2));
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> counter{0};
    pool.parallel_for(50, [&](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 50);
  }
}

// Regression: parallel_for used to wait on the pool-global in_flight_
// counter, so an unrelated blocked submit() extended (or hung) the wait.
// Completion is now tracked per call; parallel_for must return while the
// unrelated task is still blocked.
TEST(ThreadPool, ParallelForUnaffectedByUnrelatedBlockedSubmit) {
  ThreadPool pool(2);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::atomic<bool> blocker_started{false};
  pool.submit([&, gate] {
    blocker_started.store(true);
    gate.wait();
  });
  while (!blocker_started.load()) std::this_thread::yield();

  std::atomic<int> counter{0};
  pool.parallel_for(100, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 100);  // returned while the blocker still holds

  release.set_value();
  pool.wait_idle();
}

// Regression: nested parallel_for from a worker used to deadlock (the inner
// call waited for pool idleness that could never arrive).  The caller now
// participates in its own work, so the nest always drains.
TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 4 * 16);
}

TEST(ThreadPool, ParallelForFromSubmittedTaskCompletes) {
  ThreadPool pool(1);  // single worker: only caller participation saves this
  std::atomic<int> counter{0};
  pool.submit([&] {
    pool.parallel_for(32, [&](std::size_t) { counter.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPool, SizeReflectsWorkerCount) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace cmfl::util

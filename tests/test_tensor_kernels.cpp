// Equivalence tests for the kernel layer (tensor/kernels.h).
//
// GEMM: blocked/tiled kernels vs the naive seed references, within 1e-5
// relative tolerance, on random and adversarial shapes (1×N, N×1, sizes that
// are not multiples of the register/cache blocks), plus bit-identity between
// the serial and pool-sharded paths.
//
// SignPack: packed matching must be *exactly* equal to the scalar
// count_sign_matches — including ±0, denormals, exact zeros, NaN and ±inf —
// because the three-way sign() convention must be preserved bit-for-bit.
#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/vector_ops.h"
#include "util/rng.h"

namespace cmfl::tensor {
namespace {

// Force a multi-worker kernel pool before any test triggers its lazy
// creation, so matmul on large shapes actually exercises row sharding even
// on a single-core CI machine.  This file tests the *exact* tier — every
// bit-identity assertion below (sparse inputs, pool sharding, fused
// aggregation vs axpy) is a statement about the blocked reference kernels,
// so pin the tier; the fast tier has its own suite (test_tensor_simd.cpp).
const bool kForcePool = [] {
  kernels::set_max_threads(4);
  kernels::set_tier(kernels::Tier::kExact);
  return true;
}();

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-1.0f, 1.0f);
  return v;
}

void expect_all_near(std::span<const float> got, std::span<const float> want,
                     double rel_tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    const double scale = std::max(1.0, std::fabs(static_cast<double>(want[i])));
    ASSERT_NEAR(got[i], want[i], rel_tol * scale) << "index " << i;
  }
}

struct GemmShape {
  std::size_t m, k, n;
};

// Adversarial shapes: degenerate rows/cols, primes, and sizes straddling the
// 4-row register tile and 128/1024 cache blocks.
const GemmShape kShapes[] = {
    {1, 1, 1},   {1, 37, 1},   {1, 8, 129}, {129, 8, 1},  {3, 3, 3},
    {5, 7, 11},  {4, 128, 8},  {63, 5, 65}, {64, 64, 64}, {65, 129, 33},
    {17, 200, 130}, {130, 131, 7}, {2, 1025, 3},
};

TEST(GemmEquivalence, NNMatchesReferenceOnAdversarialShapes) {
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.m * s.k, 1 + s.m);
    const auto b = random_vec(s.k * s.n, 2 + s.n);
    std::vector<float> want(s.m * s.n), got(s.m * s.n);
    kernels::gemm_nn_ref(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    kernels::gemm_nn(a.data(), b.data(), got.data(), s.m, s.k, s.n, 0, s.m);
    expect_all_near(got, want, 1e-5);
  }
}

TEST(GemmEquivalence, TNMatchesReferenceOnAdversarialShapes) {
  for (const auto& s : kShapes) {
    // a is (k×m) for the transposed-left product.
    const auto a = random_vec(s.k * s.m, 3 + s.m);
    const auto b = random_vec(s.k * s.n, 4 + s.n);
    std::vector<float> want(s.m * s.n), got(s.m * s.n);
    kernels::gemm_tn_ref(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    kernels::gemm_tn(a.data(), b.data(), got.data(), s.m, s.k, s.n, 0, s.m);
    expect_all_near(got, want, 1e-5);
  }
}

TEST(GemmEquivalence, NTMatchesReferenceOnAdversarialShapes) {
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.m * s.k, 5 + s.m);
    const auto b = random_vec(s.n * s.k, 6 + s.n);
    std::vector<float> want(s.m * s.n), got(s.m * s.n);
    kernels::gemm_nt_ref(a.data(), b.data(), want.data(), s.m, s.k, s.n);
    kernels::gemm_nt(a.data(), b.data(), got.data(), s.m, s.k, s.n, 0, s.m);
    expect_all_near(got, want, 1e-5);
  }
}

TEST(GemmEquivalence, GemvMatchesReference) {
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.m * s.n, 7 + s.m);
    const auto x = random_vec(s.n, 8 + s.n);
    std::vector<float> want(s.m), got(s.m);
    kernels::gemv_ref(a.data(), x.data(), want.data(), s.m, s.n);
    kernels::gemv(a.data(), x.data(), got.data(), s.m, s.n, 0, s.m);
    expect_all_near(got, want, 1e-5);
  }
}

TEST(GemmEquivalence, SparseInputStillMatches) {
  // The seed kernels skip zero multipliers; the blocked ones do not.  With
  // finite data the skipped terms contribute exact ±0, so results agree.
  const std::size_t m = 33, k = 70, n = 41;
  auto a = random_vec(m * k, 9);
  util::Rng rng(10);
  for (auto& v : a) {
    if (rng.uniform() < 0.5) v = 0.0f;
  }
  const auto b = random_vec(k * n, 11);
  std::vector<float> want(m * n), got(m * n);
  kernels::gemm_nn_ref(a.data(), b.data(), want.data(), m, k, n);
  kernels::gemm_nn(a.data(), b.data(), got.data(), m, k, n, 0, m);
  EXPECT_EQ(got, want);  // identical accumulation order -> identical bits
}

TEST(GemmDeterminism, PoolShardedMatmulBitIdenticalToSerialKernel) {
  // 256^3 exceeds kParallelMacThreshold, so matmul shards rows across the
  // forced 4-worker pool; the result must match the serial kernel bit for
  // bit (fixed row partition, k-order accumulation per element).
  const std::size_t n = 256;
  Matrix a(n, n, random_vec(n * n, 12));
  Matrix b(n, n, random_vec(n * n, 13));
  Matrix sharded(n, n);
  matmul(a, b, sharded);
  std::vector<float> serial(n * n);
  kernels::gemm_nn(a.flat().data(), b.flat().data(), serial.data(), n, n, n, 0,
                   n);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(sharded.flat()[i], serial[i]) << "index " << i;
  }
}

TEST(GemmDeterminism, RowRangesComposeExactly) {
  // Computing [0,m) in one call equals computing arbitrary disjoint row
  // slices — the invariant parallel_rows relies on.
  const std::size_t m = 37, k = 129, n = 65;
  const auto a = random_vec(m * k, 14);
  const auto b = random_vec(k * n, 15);
  std::vector<float> whole(m * n), pieces(m * n);
  kernels::gemm_nn(a.data(), b.data(), whole.data(), m, k, n, 0, m);
  kernels::gemm_nn(a.data(), b.data(), pieces.data(), m, k, n, 0, 10);
  kernels::gemm_nn(a.data(), b.data(), pieces.data(), m, k, n, 10, 11);
  kernels::gemm_nn(a.data(), b.data(), pieces.data(), m, k, n, 11, m);
  EXPECT_EQ(whole, pieces);
}

// --- SignPack ---

std::vector<float> sign_edge_cases() {
  const float denorm = std::numeric_limits<float>::denorm_min();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  return {0.0f,  -0.0f, denorm, -denorm, 1.0f, -1.0f, nan,
          -nan,  inf,   -inf,   1e-38f,  -1e-38f, 0.0f, 3.5f};
}

TEST(SignPack, EdgeCaseClassesMatchScalarSign) {
  const auto v = sign_edge_cases();
  const SignPack p(v);
  ASSERT_EQ(p.size(), v.size());
  const auto nz = p.nonzero_words();
  const auto neg = p.negative_words();
  for (std::size_t i = 0; i < v.size(); ++i) {
    const bool packed_nonzero = (nz[i / 64] >> (i % 64)) & 1;
    EXPECT_EQ(packed_nonzero, sign(v[i]) != 0) << "element " << i;
    if (packed_nonzero) {
      const bool packed_neg = (neg[i / 64] >> (i % 64)) & 1;
      EXPECT_EQ(packed_neg, sign(v[i]) < 0) << "element " << i;
    }
  }
}

TEST(SignPack, PackedMatchesExactlyEqualScalarOnEdgeCases) {
  // Every pairing of edge-case vectors, both pack-vs-pack and float-vs-pack.
  const auto base = sign_edge_cases();
  std::vector<std::vector<float>> variants = {base};
  variants.push_back(std::vector<float>(base.rbegin(), base.rend()));
  std::vector<float> negated = base;
  for (auto& x : negated) x = -x;
  variants.push_back(negated);
  std::vector<float> zeros(base.size(), 0.0f);
  zeros[3] = -0.0f;
  variants.push_back(zeros);
  for (const auto& x : variants) {
    for (const auto& y : variants) {
      const std::size_t scalar = count_sign_matches(x, y);
      EXPECT_EQ(count_sign_matches(SignPack(x), SignPack(y)), scalar);
      EXPECT_EQ(count_sign_matches(x, SignPack(y)), scalar);
    }
  }
}

TEST(SignPack, ExactlyEqualScalarOnRandomVectorsAcrossWordBoundaries) {
  for (std::size_t n : {1u, 2u, 63u, 64u, 65u, 127u, 128u, 1000u, 4097u}) {
    util::Rng rng(n);
    std::vector<float> x(n), y(n);
    for (auto& v : x) {
      // Mix exact zeros in so the zero class is exercised at every size.
      v = rng.uniform() < 0.25 ? 0.0f : rng.uniform_f(-1.0f, 1.0f);
    }
    for (auto& v : y) {
      v = rng.uniform() < 0.25 ? 0.0f : rng.uniform_f(-1.0f, 1.0f);
    }
    const std::size_t scalar = count_sign_matches(x, y);
    EXPECT_EQ(count_sign_matches(SignPack(x), SignPack(y)), scalar) << n;
    EXPECT_EQ(count_sign_matches(x, SignPack(y)), scalar) << n;
  }
}

TEST(SignPack, AllZeroAndAssignReuse) {
  SignPack p(std::vector<float>{0.0f, -0.0f, 0.0f});
  EXPECT_TRUE(p.all_zero());
  p.assign(std::vector<float>{0.0f, 1e-40f});  // denormal is sign class +
  EXPECT_FALSE(p.all_zero());
  EXPECT_EQ(p.size(), 2u);
  p.assign(std::vector<float>{});
  EXPECT_TRUE(p.all_zero());
  EXPECT_TRUE(p.empty());
}

TEST(SignPack, SizeMismatchThrows) {
  const SignPack a(std::vector<float>{1.0f, 2.0f});
  const SignPack b(std::vector<float>{1.0f});
  EXPECT_THROW(count_sign_matches(a, b), std::invalid_argument);
  EXPECT_THROW(count_sign_matches(std::vector<float>{1.0f}, a),
               std::invalid_argument);
}

// --- Fused aggregation ---

TEST(FusedAggregation, ScaledSumBitIdenticalToAxpyThenScale) {
  const std::size_t d = 4099, clients = 7;
  std::vector<std::vector<float>> updates;
  for (std::size_t k = 0; k < clients; ++k) {
    updates.push_back(random_vec(d, 20 + k));
  }
  std::vector<float> want(d, 0.0f);
  for (const auto& u : updates) axpy(1.0f, u, want);
  scale(want, 1.0f / static_cast<float>(clients));

  std::vector<std::span<const float>> views(updates.begin(), updates.end());
  std::vector<float> got(d);
  kernels::scaled_sum(views, 1.0f / static_cast<float>(clients), got);
  EXPECT_EQ(got, want);
}

TEST(FusedAggregation, WeightedSumBitIdenticalToPerClientAxpy) {
  const std::size_t d = 2050, clients = 5;
  std::vector<std::vector<float>> updates;
  std::vector<float> weights;
  for (std::size_t k = 0; k < clients; ++k) {
    updates.push_back(random_vec(d, 40 + k));
    weights.push_back(0.1f * static_cast<float>(k + 1));
  }
  std::vector<float> want(d, 0.0f);
  for (std::size_t k = 0; k < clients; ++k) {
    axpy(weights[k], updates[k], want);
  }
  std::vector<std::span<const float>> views(updates.begin(), updates.end());
  std::vector<float> got(d);
  kernels::weighted_sum(views, weights, got);
  EXPECT_EQ(got, want);
}

TEST(FusedAggregation, SizeMismatchThrows) {
  std::vector<float> a(4), b(5), out(4);
  const std::vector<std::span<const float>> views = {a, b};
  EXPECT_THROW(kernels::scaled_sum(views, 1.0f, out), std::invalid_argument);
  const std::vector<float> w = {0.5f};
  const std::vector<std::span<const float>> ok = {a};
  std::vector<float> out5(5);
  EXPECT_THROW(kernels::weighted_sum(ok, w, out5), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::tensor

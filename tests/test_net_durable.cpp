// Durable Raft persistence end-to-end (DESIGN.md §15).
//
// Three layers of guarantees, each tested here:
//   * RaftStorage: persist-before-ack state (term, vote, log, snapshot)
//     survives reopen; snapshot installation rotates the WAL; recovering
//     from snapshot + WAL tail equals recovering from the full log.
//   * Corruption matrix: every single-bit flip and truncation of the WAL
//     either recovers a clean prefix or fails loudly; sealed snapshot and
//     checkpoint files reject *every* flip — silence is never an option.
//   * The replicated cluster: a leader killed and *restarted* mid-round
//     (including with its WAL deliberately damaged while down) finishes the
//     run bit-identically to the fault-free trajectory.
//
// These tests run under the `durability` ctest label; bench/run_failover.sh
// runs them under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/filter.h"
#include "fl/checkpoint.h"
#include "fl/convex_testbed.h"
#include "net/cluster.h"
#include "net/raft.h"
#include "net/replicated_master.h"

namespace cmfl::net {
namespace {

std::vector<std::byte> cmd(const std::string& s) {
  std::vector<std::byte> out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

struct TempDir {
  TempDir() {
    dir = (std::filesystem::temp_directory_path() /
           ("cmfl_net_durable_" + std::string(::testing::UnitTest::GetInstance()
                                                  ->current_test_info()
                                                  ->name())))
              .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::string path(const std::string& name) const { return dir + "/" + name; }
  std::string dir;
};

std::vector<std::uint8_t> read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_raw(const std::string& path,
               const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

// ----------------------------------------------------------- RaftStorage

TEST(RaftStorage, PersistsAndRecoversHardStateAndLog) {
  TempDir tmp;
  {
    RaftStorage s(tmp.path("r0"));
    EXPECT_FALSE(s.recovered().any);
    s.persist_hard_state(3, std::nullopt);
    s.persist_hard_state(3, 1);  // vote within the same term
    s.append_entry(1, RaftEntry{3, cmd("a")});
    s.append_entry(2, RaftEntry{3, cmd("b")}, /*sync_now=*/false);
    s.append_entry(3, RaftEntry{3, cmd("c")}, /*sync_now=*/false);
    s.sync();
    EXPECT_GT(s.counters().wal_bytes_fsynced, 0u);
    EXPECT_GE(s.counters().wal_records, 5u);  // 2 hard-state + 3 entries
  }
  RaftStorage s(tmp.path("r0"));
  const RaftPersistentState& rec = s.recovered();
  EXPECT_TRUE(rec.any);
  EXPECT_EQ(rec.term, 3u);
  ASSERT_TRUE(rec.voted_for.has_value());
  EXPECT_EQ(*rec.voted_for, 1u);
  EXPECT_EQ(rec.snapshot_index, 0u);
  ASSERT_EQ(rec.log.size(), 3u);
  EXPECT_EQ(rec.log[1].command, cmd("b"));
  EXPECT_EQ(s.counters().replay_entries, 3u);
  EXPECT_FALSE(rec.wal_tail_truncated);
}

TEST(RaftStorage, TruncateSuffixDropsConflictingEntriesOnRecovery) {
  TempDir tmp;
  {
    RaftStorage s(tmp.path("r0"));
    s.persist_hard_state(2, std::nullopt);
    s.append_entry(1, RaftEntry{1, cmd("keep")});
    s.append_entry(2, RaftEntry{1, cmd("conflict-a")});
    s.append_entry(3, RaftEntry{1, cmd("conflict-b")});
    s.truncate_suffix(1);  // the leader overwrote 2.. with its own entries
    s.append_entry(2, RaftEntry{2, cmd("replacement")});
  }
  RaftStorage s(tmp.path("r0"));
  ASSERT_EQ(s.recovered().log.size(), 2u);
  EXPECT_EQ(s.recovered().log[0].command, cmd("keep"));
  EXPECT_EQ(s.recovered().log[1].command, cmd("replacement"));
  EXPECT_EQ(s.recovered().log[1].term, 2u);
}

TEST(RaftStorage, SnapshotRotatesWalAndRecoversTail) {
  TempDir tmp;
  std::uint64_t wal_before = 0;
  {
    RaftStorage s(tmp.path("r0"));
    s.persist_hard_state(4, 2);
    for (std::uint64_t i = 1; i <= 8; ++i) {
      s.append_entry(i, RaftEntry{4, cmd("e" + std::to_string(i))});
    }
    wal_before = std::filesystem::file_size(s.wal_path());
    const std::vector<RaftEntry> tail = {RaftEntry{4, cmd("e6")},
                                         RaftEntry{4, cmd("e7")},
                                         RaftEntry{4, cmd("e8")}};
    const auto snap = cmd("application-state-through-5");
    s.install_snapshot(5, 4, snap, tail);
    EXPECT_EQ(s.counters().snapshots_written, 1u);
    // Rotation shrank the WAL down to hard state + the live tail.
    EXPECT_LT(std::filesystem::file_size(s.wal_path()), wal_before);
  }
  RaftStorage s(tmp.path("r0"));
  const RaftPersistentState& rec = s.recovered();
  EXPECT_EQ(rec.snapshot_index, 5u);
  EXPECT_EQ(rec.snapshot_term, 4u);
  EXPECT_EQ(rec.snapshot, cmd("application-state-through-5"));
  ASSERT_EQ(rec.log.size(), 3u);
  EXPECT_EQ(rec.log[0].command, cmd("e6"));
  EXPECT_EQ(rec.log[2].command, cmd("e8"));
  EXPECT_EQ(rec.term, 4u);
}

TEST(RaftStorage, RestartFromSnapshotPlusWalEqualsRestartFromFullLog) {
  // Two storages that witnessed the same history, one of which compacted at
  // index 5: recovery must land both in logically identical states.
  TempDir tmp;
  const auto snap = cmd("state-through-5");
  {
    RaftStorage full(tmp.path("full"));
    RaftStorage compacted(tmp.path("compacted"));
    for (RaftStorage* s : {&full, &compacted}) {
      s->persist_hard_state(7, 0);
      for (std::uint64_t i = 1; i <= 9; ++i) {
        s->append_entry(i, RaftEntry{7, cmd("e" + std::to_string(i))});
      }
    }
    const std::vector<RaftEntry> tail = {
        RaftEntry{7, cmd("e6")}, RaftEntry{7, cmd("e7")},
        RaftEntry{7, cmd("e8")}, RaftEntry{7, cmd("e9")}};
    compacted.install_snapshot(5, 7, snap, tail);
  }
  RaftStorage full(tmp.path("full"));
  RaftStorage compacted(tmp.path("compacted"));
  const RaftPersistentState& a = full.recovered();
  const RaftPersistentState& b = compacted.recovered();
  EXPECT_EQ(a.term, b.term);
  EXPECT_EQ(a.voted_for, b.voted_for);
  // Same last index, and entry-for-entry agreement above the snapshot.
  ASSERT_EQ(a.log.size(), 9u);
  ASSERT_EQ(b.snapshot_index + b.log.size(), 9u);
  for (std::size_t i = 0; i < b.log.size(); ++i) {
    EXPECT_EQ(b.log[i], a.log[b.snapshot_index + i]) << "index offset " << i;
  }
  EXPECT_EQ(b.snapshot, snap);

  // Nodes built on top agree on the log surface they expose.
  RaftConfig c;
  c.cluster_size = 3;
  RaftNode na(c, &full);
  RaftNode nb(c, &compacted);
  EXPECT_EQ(na.last_log_index(), nb.last_log_index());
  EXPECT_EQ(na.term(), nb.term());
  EXPECT_EQ(na.role(), RaftNode::Role::kFollower);
  EXPECT_EQ(nb.role(), RaftNode::Role::kFollower);
}

TEST(RaftStorage, WalBitFlipMatrixRecoversPrefixOrThrows) {
  // Exhaustive single-bit corruption of a real RaftStorage WAL: every flip
  // must yield either a state that is a prefix of the original history or a
  // loud std::runtime_error — never a divergent log.
  TempDir tmp;
  {
    RaftStorage s(tmp.path("r0"), /*sync=*/false);
    s.persist_hard_state(3, 1);
    for (std::uint64_t i = 1; i <= 4; ++i) {
      s.append_entry(i, RaftEntry{3, cmd("entry-" + std::to_string(i))});
    }
  }
  const std::string wal = tmp.path("r0") + "/wal";
  ASSERT_TRUE(std::filesystem::exists(wal));
  const auto pristine = read_raw(wal);
  std::size_t recovered_runs = 0;
  std::size_t loud_failures = 0;
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      auto corrupt = pristine;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      write_raw(wal, corrupt);
      try {
        RaftStorage s(tmp.path("r0"), /*sync=*/false);
        const RaftPersistentState& rec = s.recovered();
        // A successful recovery must be a prefix: the hard state intact
        // (its record precedes every entry), entries matching the original.
        ASSERT_EQ(rec.term, 3u) << "byte " << i << " bit " << bit;
        ASSERT_LE(rec.log.size(), 4u);
        for (std::size_t k = 0; k < rec.log.size(); ++k) {
          ASSERT_EQ(rec.log[k].command, cmd("entry-" + std::to_string(k + 1)))
              << "byte " << i << " bit " << bit << " diverged at entry " << k;
        }
        ++recovered_runs;
      } catch (const std::runtime_error&) {
        ++loud_failures;
      }
    }
  }
  EXPECT_GT(recovered_runs, 0u);
  EXPECT_GT(loud_failures, 0u);
}

TEST(RaftStorage, SnapshotBitFlipMatrixAlwaysFailsLoudly) {
  // The snapshot is a sealed file: unlike the WAL there is no valid-prefix
  // fallback, so every single-bit flip must be a loud failure.
  TempDir tmp;
  {
    RaftStorage s(tmp.path("r0"), /*sync=*/false);
    s.persist_hard_state(2, std::nullopt);
    s.append_entry(1, RaftEntry{2, cmd("e1")});
    s.append_entry(2, RaftEntry{2, cmd("e2")});
    s.install_snapshot(2, 2, cmd("snapshot-state"), {});
  }
  const std::string snap = tmp.path("r0") + "/snapshot";
  ASSERT_TRUE(std::filesystem::exists(snap));
  const auto pristine = read_raw(snap);
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      auto corrupt = pristine;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      write_raw(snap, corrupt);
      EXPECT_THROW(RaftStorage(tmp.path("r0"), /*sync=*/false),
                   std::runtime_error)
          << "snapshot byte " << i << " bit " << bit << " slipped through";
    }
  }
}

TEST(Checkpoint, FileBitFlipMatrixAlwaysFailsLoudly) {
  // fl::load_checkpoint_file rides the same sealed-file path; a flipped
  // training checkpoint must never load.
  TempDir tmp;
  const std::string path = tmp.path("ck.bin");
  fl::TrainerCheckpoint ck;
  ck.iteration = 12;
  ck.global_params = {1.0f, -2.5f, 0.125f};
  ck.estimator_estimate = {0.5f, 0.5f, 0.5f};
  ck.cumulative_rounds = 24;
  ck.uploaded_bytes = 4096;
  ck.eliminations_per_client = {1, 2};
  ck.uploads_per_client = {3, 4};
  ck.client_state = {{7, 8}, {9}};
  fl::save_checkpoint_file(path, ck);
  ASSERT_EQ(fl::load_checkpoint_file(path).iteration, 12u);  // sanity
  const auto pristine = read_raw(path);
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      auto corrupt = pristine;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      write_raw(path, corrupt);
      EXPECT_THROW(fl::load_checkpoint_file(path), std::runtime_error)
          << "checkpoint byte " << i << " bit " << bit << " slipped through";
    }
  }
}

// --------------------------------------------------- storage fault injector

TEST(StorageFaultInjector, IsSeededAndDeterministic) {
  TempDir tmp;
  const auto build = [&](const std::string& name) {
    RaftStorage s(tmp.path(name), /*sync=*/false);
    s.persist_hard_state(1, std::nullopt);
    for (std::uint64_t i = 1; i <= 5; ++i) {
      s.append_entry(i, RaftEntry{1, cmd("entry-" + std::to_string(i))});
    }
    return tmp.path(name) + "/wal";
  };
  const std::string a = build("a");
  const std::string b = build("b");
  StorageFaultInjector ia(42), ib(42);
  const auto act_a = ia.apply(StorageFault::kBitFlip, a);
  const auto act_b = ib.apply(StorageFault::kBitFlip, b);
  ASSERT_TRUE(act_a.has_value());
  ASSERT_TRUE(act_b.has_value());
  EXPECT_EQ(act_a->offset, act_b->offset);
  EXPECT_EQ(act_a->bit, act_b->bit);
  EXPECT_EQ(read_raw(a), read_raw(b));
  EXPECT_EQ(StorageFaultInjector(1).apply(StorageFault::kNone, a),
            std::nullopt);
}

TEST(StorageFaultInjector, TornFinalWriteIsRecoverableByDesign) {
  TempDir tmp;
  {
    RaftStorage s(tmp.path("r0"), /*sync=*/false);
    s.persist_hard_state(1, std::nullopt);
    for (std::uint64_t i = 1; i <= 5; ++i) {
      s.append_entry(i, RaftEntry{1, cmd("entry-" + std::to_string(i))});
    }
  }
  const std::string wal = tmp.path("r0") + "/wal";
  StorageFaultInjector injector(7);
  const auto act = injector.apply(StorageFault::kTornFinalWrite, wal);
  ASSERT_TRUE(act.has_value());
  EXPECT_LT(act->new_size, act->old_size);
  // A torn final write is exactly what the torn-tail rule tolerates.
  RaftStorage s(tmp.path("r0"), /*sync=*/false);
  EXPECT_TRUE(s.recovered().wal_tail_truncated);
  ASSERT_EQ(s.recovered().log.size(), 4u);
  EXPECT_EQ(s.recovered().log.back().command, cmd("entry-4"));
}

// ------------------------------------------------------------ leader probe

TEST(LeaderProbe, FollowsHintsThenProbesRoundRobinWithCappedBackoff) {
  LeaderProbe probe(3);
  // Valid hints are followed while the 2n budget lasts.
  for (std::uint32_t i = 0; i < 6; ++i) {
    const auto t = probe.on_redirect(1);
    EXPECT_FALSE(t.probed) << "redirect " << i;
    EXPECT_EQ(t.replica, 1u);
  }
  // Budget exhausted: round-robin probes skipping the stale known leader,
  // with doubling backoff capped at kBackoffCapMs.
  double last_backoff = 0.0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto t = probe.on_redirect(1);
    EXPECT_TRUE(t.probed);
    EXPECT_EQ(t.replica, (1 + 1 + i) % 3) << "probe " << i;
    EXPECT_GE(t.backoff_ms, last_backoff);
    EXPECT_LE(t.backoff_ms, LeaderProbe::kBackoffCapMs);
    last_backoff = t.backoff_ms;
  }
  EXPECT_EQ(last_backoff, LeaderProbe::kBackoffCapMs);
  // An out-of-range hint is never followed, budget or not.
  LeaderProbe fresh(3);
  EXPECT_TRUE(fresh.on_redirect(99).probed);
  // A broadcast resets the budget and backoff.
  probe.on_broadcast(2);
  const auto t = probe.on_redirect(0);
  EXPECT_FALSE(t.probed);
  EXPECT_EQ(t.replica, 0u);
}

// ------------------------------------------------- the replicated cluster

fl::ConvexTestbedSpec convex_spec() {
  fl::ConvexTestbedSpec spec;
  spec.clients = 4;
  spec.dim = 8;
  spec.local_steps = 3;
  spec.gradient_noise = 0.02;
  return spec;
}

ClusterOptions base_options() {
  ClusterOptions opt;
  opt.fl.local_epochs = 1;
  opt.fl.batch_size = 1;
  opt.fl.learning_rate = core::Schedule::constant(0.1);
  opt.fl.max_iterations = 8;
  opt.fl.eval_every = 2;
  opt.replication.replicas = 3;
  return opt;
}

ClusterResult run_once(const ClusterOptions& opt) {
  fl::ConvexWorkload w = fl::make_convex_workload(convex_spec());
  FlCluster cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.3)),
      w.evaluator, opt);
  return cluster.run();
}

void expect_same_trajectory(const ClusterResult& a, const ClusterResult& b) {
  ASSERT_EQ(a.sim.history.size(), b.sim.history.size());
  for (std::size_t i = 0; i < a.sim.history.size(); ++i) {
    EXPECT_TRUE(fl::bitwise_equal(a.sim.history[i], b.sim.history[i]))
        << "iteration record " << i;
  }
  EXPECT_EQ(a.sim.final_params, b.sim.final_params);
  EXPECT_EQ(a.sim.eliminations_per_client, b.sim.eliminations_per_client);
  EXPECT_EQ(a.sim.uploads_per_client, b.sim.uploads_per_client);
  EXPECT_EQ(a.sim.total_rounds, b.sim.total_rounds);
  EXPECT_EQ(a.sim.uploaded_bytes, b.sim.uploaded_bytes);
  ASSERT_EQ(a.footprint.size(), b.footprint.size());
  for (std::size_t i = 0; i < a.footprint.size(); ++i) {
    EXPECT_EQ(a.footprint[i].accuracy, b.footprint[i].accuracy);
    EXPECT_EQ(a.footprint[i].uplink_bytes, b.footprint[i].uplink_bytes);
  }
}

TEST(DurableCluster, ValidationRequiresStorageDirForRestartSchedules) {
  fl::ConvexWorkload w = fl::make_convex_workload(convex_spec());
  auto opt = base_options();
  opt.fault.replica_restart.push_back({3, 2, 50.0, StorageFault::kNone});
  opt.recovery.round_timeout_s = 0.5;
  EXPECT_THROW(FlCluster(std::move(w.clients),
                         std::make_unique<core::AcceptAllFilter>(),
                         w.evaluator, opt),
               std::invalid_argument);
}

TEST(DurableCluster, FaultFreeDurableRunMatchesInMemoryBitForBit) {
  // Turning persistence on changes where control state lives, not what it
  // is: same trajectory, plus real fsynced WAL bytes.
  TempDir tmp;
  const ClusterResult memory = run_once(base_options());
  auto opt = base_options();
  opt.replication.storage_dir = tmp.path("wal");
  const ClusterResult durable = run_once(opt);
  expect_same_trajectory(memory, durable);
  EXPECT_GT(durable.faults.wal_bytes_fsynced, 0u);
  EXPECT_EQ(durable.faults.replica_restarts, 0u);
  EXPECT_EQ(durable.faults.restart_load_errors, 0u);
  EXPECT_EQ(memory.faults.wal_bytes_fsynced, 0u);
}

TEST(DurableCluster, LeaderKillAndRestartMidRoundBitIdentical) {
  // The tentpole property: the round-3 leader is killed after accepting two
  // of four replies, sleeps out its downtime, recovers term/vote/log/
  // snapshot from its own storage directory, and rejoins as a follower —
  // and the trajectory is bit-identical to the fault-free run.
  TempDir tmp;
  const ClusterResult baseline = run_once(base_options());

  auto opt = base_options();
  opt.replication.storage_dir = tmp.path("wal");
  // Short downtime: the failover election alone takes tens of milliseconds,
  // so a 5 ms restart is guaranteed to rejoin while the run is still going.
  opt.fault.replica_restart.push_back({3, 2, 5.0, StorageFault::kNone});
  opt.recovery.round_timeout_s = 0.5;
  opt.recovery.max_attempts = 10;
  const ClusterResult restarted = run_once(opt);

  expect_same_trajectory(baseline, restarted);
  EXPECT_EQ(restarted.faults.replica_restarts, 1u);
  EXPECT_EQ(restarted.faults.restart_load_errors, 0u);
  EXPECT_EQ(restarted.faults.leader_crashes, 0u);  // restarts count apart
  EXPECT_TRUE(restarted.faults.crashed_workers.empty());
  EXPECT_GT(restarted.faults.wal_bytes_fsynced, 0u);
  // Recovery replayed the killed leader's persisted entries from its WAL.
  EXPECT_GT(restarted.faults.wal_replay_entries, 0u);
}

TEST(DurableCluster, RestartWithDamagedWalRecoversOrStaysDownLoudly) {
  // Every storage-fault kind, against the tentpole invariant: the restarted
  // replica either recovers (a prefix of its WAL is intact, and the leader
  // catches it up) or refuses loudly and stays down as a minority — the
  // trajectory is bit-identical in all cases, divergence never an option.
  TempDir tmp;
  const ClusterResult baseline = run_once(base_options());
  for (const StorageFault fault :
       {StorageFault::kTornFinalWrite, StorageFault::kBitFlip,
        StorageFault::kTruncate, StorageFault::kFsyncDroppedTail}) {
    auto opt = base_options();
    opt.replication.storage_dir =
        tmp.path("wal_" + std::to_string(static_cast<int>(fault)));
    opt.fault.replica_restart.push_back({3, 2, 5.0, fault});
    opt.recovery.round_timeout_s = 0.5;
    opt.recovery.max_attempts = 10;
    const ClusterResult damaged = run_once(opt);
    expect_same_trajectory(baseline, damaged);
    // Exactly one of: recovered and rejoined, or refused and stayed down.
    EXPECT_EQ(damaged.faults.replica_restarts +
                  damaged.faults.restart_load_errors,
              1u)
        << "fault kind " << static_cast<int>(fault);
    EXPECT_TRUE(damaged.faults.crashed_workers.empty());
  }
}

}  // namespace
}  // namespace cmfl::net

#include "alloc_counter.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<std::size_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align, size ? size : align) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace

namespace cmfl::testing {

void reset_alloc_count() noexcept {
  g_allocs.store(0, std::memory_order_relaxed);
}

std::size_t alloc_count() noexcept {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace cmfl::testing

// Global replacements.  malloc/free stay the underlying allocator, so
// sanitizers that interpose at the malloc layer keep working.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

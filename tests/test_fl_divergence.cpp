#include "fl/divergence.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmfl::fl {
namespace {

TEST(Divergence, Eq7Definition) {
  // global = (2), clients at 1 and 3: d = (|1-2|/2 + |3-2|/2)/2 = 0.5
  std::vector<float> global = {2.0f};
  std::vector<std::vector<float>> clients = {{1.0f}, {3.0f}};
  const auto d = normalized_model_divergence(global, clients);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_NEAR(d[0], 0.5, 1e-9);
}

TEST(Divergence, SkipsNearZeroGlobalParams) {
  std::vector<float> global = {0.0f, 1.0f};
  std::vector<std::vector<float>> clients = {{5.0f, 2.0f}};
  const auto d = normalized_model_divergence(global, clients);
  ASSERT_EQ(d.size(), 1u);  // the zero-global coordinate is skipped
  EXPECT_NEAR(d[0], 1.0, 1e-9);
}

TEST(Divergence, IdenticalClientsGiveZero) {
  std::vector<float> global = {1.0f, -2.0f, 3.0f};
  std::vector<std::vector<float>> clients = {
      {1.0f, -2.0f, 3.0f}, {1.0f, -2.0f, 3.0f}};
  for (double d : normalized_model_divergence(global, clients)) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

TEST(Divergence, SubsetMaskSelectsClients) {
  std::vector<float> global = {1.0f};
  std::vector<std::vector<float>> clients = {{2.0f}, {1.0f}, {4.0f}};
  const std::vector<bool> mask = {true, false, true};
  const auto outliers =
      normalized_model_divergence_subset(global, clients, mask, true);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_NEAR(outliers[0], (1.0 + 3.0) / 2.0, 1e-9);
  const auto normals =
      normalized_model_divergence_subset(global, clients, mask, false);
  EXPECT_NEAR(normals[0], 0.0, 1e-9);
}

TEST(Divergence, Validation) {
  std::vector<float> global = {1.0f};
  EXPECT_THROW(normalized_model_divergence(global, {}),
               std::invalid_argument);
  std::vector<std::vector<float>> wrong_dim = {{1.0f, 2.0f}};
  EXPECT_THROW(normalized_model_divergence(global, wrong_dim),
               std::invalid_argument);
  std::vector<std::vector<float>> clients = {{1.0f}};
  const std::vector<bool> bad_mask = {true, false};
  EXPECT_THROW(normalized_model_divergence_subset(global, clients, bad_mask,
                                                  true),
               std::invalid_argument);
  const std::vector<bool> empty_subset = {false};
  EXPECT_THROW(normalized_model_divergence_subset(global, clients,
                                                  empty_subset, true),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::fl

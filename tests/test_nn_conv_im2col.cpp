// Randomized bitwise equivalence of the optimized Conv2d path (im2col/GEMM
// forward, hoisted-bounds sparse scatter backward) against the retained
// naive reference loops (set_reference_impl(true)), across kernel /
// padding / channel / rectangular-shape edge cases.  Equality is checked
// with memcmp — bit-identical, not just approximately equal — because the
// optimized path is designed to preserve the naive accumulation order
// exactly (see conv2d.h).
#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "nn/conv2d.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace cmfl::nn {
namespace {

// This file asserts *bitwise* equality against the naive reference loops,
// which is a property of the exact kernel tier; the FMA fast tier is
// ULP-bounded instead (test_tensor_simd.cpp), so pin the tier here.
const bool kForceExactTier = [] {
  tensor::kernels::set_tier(tensor::kernels::Tier::kExact);
  return true;
}();

bool bitwise_equal(std::span<const float> a, std::span<const float> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

void copy_params(Conv2d& from, Conv2d& to) {
  std::vector<std::span<float>> src, dst;
  from.collect_params(src);
  to.collect_params(dst);
  ASSERT_EQ(src.size(), dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(src[i].size(), dst[i].size());
    std::memcpy(dst[i].data(), src[i].data(), src[i].size() * sizeof(float));
  }
}

void check_equivalence(const Conv2dSpec& spec, std::size_t batch,
                       util::Rng& rng) {
  SCOPED_TRACE(::testing::Message()
               << "in_c=" << spec.in_channels << " ih=" << spec.in_height
               << " iw=" << spec.in_width << " out_c=" << spec.out_channels
               << " k=" << spec.kernel << " pad=" << spec.padding
               << " batch=" << batch);
  Conv2d gemm(spec);
  Conv2d ref(spec);
  ref.set_reference_impl(true);
  gemm.init_params(rng);
  copy_params(gemm, ref);

  tensor::Matrix x(batch, gemm.in_dim());
  for (float& v : x.flat()) v = rng.normal_f(0.0f, 1.0f);

  tensor::Matrix out_gemm, out_ref;
  gemm.forward(x, out_gemm, /*training=*/true);
  ref.forward(x, out_ref, /*training=*/true);
  EXPECT_TRUE(bitwise_equal(out_gemm.flat(), out_ref.flat()))
      << "forward outputs diverge";

  // ~30% exact zeros in the upstream gradient exercise the naive path's
  // `g == 0` skip against the GEMM's explicit multiply-by-zero.
  tensor::Matrix gy(batch, gemm.out_dim());
  for (float& v : gy.flat()) {
    v = rng.uniform() < 0.3 ? 0.0f : rng.normal_f(0.0f, 1.0f);
  }

  gemm.zero_grads();
  ref.zero_grads();
  tensor::Matrix gx_gemm, gx_ref;
  gemm.backward(gy, gx_gemm);
  ref.backward(gy, gx_ref);
  EXPECT_TRUE(bitwise_equal(gx_gemm.flat(), gx_ref.flat()))
      << "input gradients diverge";

  std::vector<std::span<float>> g_gemm, g_ref;
  gemm.collect_grads(g_gemm);
  ref.collect_grads(g_ref);
  ASSERT_EQ(g_gemm.size(), g_ref.size());
  for (std::size_t i = 0; i < g_gemm.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(g_gemm[i], g_ref[i]))
        << "parameter gradient segment " << i << " diverges";
  }
}

Conv2dSpec make_spec(std::size_t in_c, std::size_t ih, std::size_t iw,
                     std::size_t out_c, std::size_t k, std::size_t pad) {
  Conv2dSpec spec;
  spec.in_channels = in_c;
  spec.in_height = ih;
  spec.in_width = iw;
  spec.out_channels = out_c;
  spec.kernel = k;
  spec.padding = pad;
  return spec;
}

TEST(ConvIm2colEquivalence, KernelPaddingChannelEdgeCases) {
  util::Rng rng(101);
  // kernel 1 (pointwise), no padding
  check_equivalence(make_spec(1, 5, 5, 1, 1, 0), 2, rng);
  check_equivalence(make_spec(3, 4, 6, 2, 1, 0), 3, rng);
  // kernel 3, `same` padding, rectangular input
  check_equivalence(make_spec(2, 6, 4, 3, 3, 1), 2, rng);
  check_equivalence(make_spec(3, 7, 5, 3, 3, 1), 1, rng);
  // kernel 3, no padding, minimal input -> 1×1 output
  check_equivalence(make_spec(1, 3, 3, 2, 3, 0), 2, rng);
  // kernel 3, full padding (pad = k−1): output larger than input
  check_equivalence(make_spec(2, 4, 4, 1, 3, 2), 2, rng);
  // kernel 5, `same` padding (the paper's CNN shape)
  check_equivalence(make_spec(3, 8, 8, 2, 5, 2), 2, rng);
  // kernel 5, full padding, rectangular
  check_equivalence(make_spec(2, 5, 7, 2, 5, 4), 1, rng);
  // 1×1 input, 1×1 kernel: degenerate single-pixel case
  check_equivalence(make_spec(1, 1, 1, 1, 1, 0), 1, rng);
}

TEST(ConvIm2colEquivalence, RandomizedConfigs) {
  util::Rng rng(202);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t k = 1 + 2 * rng.uniform_index(3);  // 1, 3, 5
    const std::size_t pad = rng.uniform_index(k);        // 0 .. k−1
    // Input large enough for at least one output pixel.
    const std::size_t min_side = k > 2 * pad ? k - 2 * pad : 1;
    const std::size_t ih = min_side + rng.uniform_index(6);
    const std::size_t iw = min_side + rng.uniform_index(6);
    const std::size_t in_c = 1 + rng.uniform_index(3);
    const std::size_t out_c = 1 + rng.uniform_index(3);
    const std::size_t batch = 1 + rng.uniform_index(4);
    check_equivalence(make_spec(in_c, ih, iw, out_c, k, pad), batch, rng);
  }
}

// Repeated steps through the same instance must keep the workspace-cached
// GEMM path equivalent (stale-buffer regression guard).
TEST(ConvIm2colEquivalence, RepeatedStepsReuseWorkspaces) {
  util::Rng rng(303);
  const Conv2dSpec spec = make_spec(2, 6, 6, 3, 3, 1);
  Conv2d gemm(spec);
  Conv2d ref(spec);
  ref.set_reference_impl(true);
  gemm.init_params(rng);
  copy_params(gemm, ref);

  for (int step = 0; step < 4; ++step) {
    // Vary the batch size to exercise workspace re-sizing.
    const std::size_t batch = 1 + (static_cast<std::size_t>(step) % 3);
    tensor::Matrix x(batch, gemm.in_dim());
    for (float& v : x.flat()) v = rng.normal_f(0.0f, 1.0f);
    tensor::Matrix gy(batch, gemm.out_dim());
    for (float& v : gy.flat()) v = rng.normal_f(0.0f, 1.0f);

    tensor::Matrix out_gemm, out_ref, gx_gemm, gx_ref;
    gemm.forward(x, out_gemm, true);
    ref.forward(x, out_ref, true);
    EXPECT_TRUE(bitwise_equal(out_gemm.flat(), out_ref.flat()))
        << "step " << step;
    gemm.backward(gy, gx_gemm);
    ref.backward(gy, gx_ref);
    EXPECT_TRUE(bitwise_equal(gx_gemm.flat(), gx_ref.flat()))
        << "step " << step;
  }
  // Accumulated parameter gradients across all steps must match too.
  std::vector<std::span<float>> g_gemm, g_ref;
  gemm.collect_grads(g_gemm);
  ref.collect_grads(g_ref);
  for (std::size_t i = 0; i < g_gemm.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(g_gemm[i], g_ref[i])) << "grad segment " << i;
  }
}

}  // namespace
}  // namespace cmfl::nn

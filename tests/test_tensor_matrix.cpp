#include "tensor/matrix.h"

#include <gtest/gtest.h>

#include "tensor/init.h"
#include "util/rng.h"

namespace cmfl::tensor {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (float& v : m.flat()) v = rng.uniform_f(-1.0f, 1.0f);
  return m;
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.at(0, 0), 0.0f);
}

TEST(Matrix, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Matrix, CheckedAtBounds) {
  Matrix m(2, 2);
  EXPECT_THROW(m.checked_at(2, 0), std::out_of_range);
  EXPECT_THROW(m.checked_at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.checked_at(1, 1));
}

TEST(Matrix, Transposed) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3.0f);
}

TEST(Matmul, KnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix out(2, 2);
  matmul(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 154.0f);
}

TEST(Matmul, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2), out(2, 2);
  EXPECT_THROW(matmul(a, b, out), std::invalid_argument);
}

TEST(Matmul, VariantsAgreeWithExplicitTranspose) {
  util::Rng rng(5);
  const Matrix a = random_matrix(4, 3, rng);
  const Matrix b = random_matrix(4, 5, rng);
  // a^T b via matmul_tn vs transposed() + matmul
  Matrix tn(3, 5);
  matmul_tn(a, b, tn);
  Matrix at = a.transposed();
  Matrix expected(3, 5);
  matmul(at, b, expected);
  for (std::size_t i = 0; i < tn.size(); ++i) {
    EXPECT_NEAR(tn.flat()[i], expected.flat()[i], 1e-5f);
  }
  // a b^T via matmul_nt
  const Matrix c = random_matrix(5, 3, rng);
  Matrix nt(4, 5);
  const Matrix a43 = random_matrix(4, 3, rng);
  matmul_nt(a43, c, nt);
  Matrix ct = c.transposed();
  Matrix expected2(4, 5);
  matmul(a43, ct, expected2);
  for (std::size_t i = 0; i < nt.size(); ++i) {
    EXPECT_NEAR(nt.flat()[i], expected2.flat()[i], 1e-5f);
  }
}

TEST(Matvec, MatchesMatmul) {
  util::Rng rng(6);
  const Matrix a = random_matrix(4, 3, rng);
  std::vector<float> x = {0.5f, -1.0f, 2.0f};
  std::vector<float> y(4);
  matvec(a, x, y);
  for (std::size_t i = 0; i < 4; ++i) {
    double acc = 0;
    for (std::size_t j = 0; j < 3; ++j) acc += a.at(i, j) * x[j];
    EXPECT_NEAR(y[i], acc, 1e-6);
  }
}

TEST(MatvecT, MatchesTransposedMatvec) {
  util::Rng rng(8);
  const Matrix a = random_matrix(4, 3, rng);
  std::vector<float> x = {1.0f, 2.0f, -1.0f, 0.5f};
  std::vector<float> y(3);
  matvec_t(a, x, y);
  const Matrix at = a.transposed();
  std::vector<float> expected(3);
  matvec(at, x, expected);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR(y[j], expected[j], 1e-6);
}

TEST(AddRowBias, AddsToEveryRow) {
  Matrix m(2, 3);
  std::vector<float> bias = {1.0f, 2.0f, 3.0f};
  add_row_bias(m, bias);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_FLOAT_EQ(m.at(r, 0), 1.0f);
    EXPECT_FLOAT_EQ(m.at(r, 2), 3.0f);
  }
  std::vector<float> bad = {1.0f};
  EXPECT_THROW(add_row_bias(m, bad), std::invalid_argument);
}

TEST(Accumulate, SumsAndChecksShape) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {10, 20, 30, 40});
  accumulate(a, b);
  EXPECT_FLOAT_EQ(a.at(1, 1), 44.0f);
  Matrix c(2, 3);
  EXPECT_THROW(accumulate(a, c), std::invalid_argument);
}

TEST(Init, XavierBoundsRespected) {
  util::Rng rng(9);
  std::vector<float> w(1000);
  xavier_uniform(w, 10, 10, rng);
  const float bound = std::sqrt(6.0f / 20.0f);
  for (float v : w) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
}

TEST(Init, HeNormalVariance) {
  util::Rng rng(10);
  std::vector<float> w(20000);
  he_normal(w, 50, rng);
  double sq = 0;
  for (float v : w) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(sq / static_cast<double>(w.size()), 2.0 / 50.0, 0.004);
}

TEST(Init, ZeroFanRejected) {
  util::Rng rng(10);
  std::vector<float> w(4);
  EXPECT_THROW(xavier_uniform(w, 0, 0, rng), std::invalid_argument);
  EXPECT_THROW(he_normal(w, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::tensor

// Federated multi-task learning: task solver behaviour and the full MOCHA
// loop with and without CMFL filtering.
#include <gtest/gtest.h>

#include "core/filter.h"
#include "data/synth_har.h"
#include "mtl/mtl_simulation.h"

namespace cmfl::mtl {
namespace {

data::HarData small_har(std::uint64_t seed = 7) {
  util::Rng rng(seed);
  data::SynthHarSpec spec;
  spec.clients = 20;
  spec.features = 48;
  spec.min_samples = 20;
  spec.max_samples = 60;
  spec.outlier_fraction = 0.2;
  return data::make_synth_har(spec, rng);
}

MtlOptions fast_options() {
  MtlOptions opt;
  opt.local_epochs = 5;
  opt.batch_size = 4;
  opt.learning_rate = 0.02f;
  opt.max_iterations = 40;
  opt.eval_every = 5;
  opt.omega_every = 10;
  opt.lambda = 0.01;
  opt.seed = 11;
  return opt;
}

TEST(TaskSolver, TrainsTowardItsData) {
  data::HarData har = small_har();
  util::Rng rng(1);
  TaskSolver solver(&har.dataset, har.partition.client_indices[0], 0.25,
                    rng.split(0));
  tensor::Matrix w(1, har.dataset.features());
  const tensor::Matrix omega = identity_omega(1);
  const double acc_before = solver.train_accuracy(w.row(0));
  for (int round = 0; round < 20; ++round) {
    solver.train_local(w, 0, omega, 0.0, 5, 4, 0.05f);
  }
  const double acc_after = solver.train_accuracy(w.row(0));
  EXPECT_GT(acc_after, acc_before);
  EXPECT_GT(acc_after, 0.7);
}

TEST(TaskSolver, Validation) {
  data::HarData har = small_har();
  util::Rng rng(2);
  EXPECT_THROW(TaskSolver(nullptr, {0}, 0.2, rng), std::invalid_argument);
  EXPECT_THROW(TaskSolver(&har.dataset, {}, 0.2, rng), std::invalid_argument);
  EXPECT_THROW(TaskSolver(&har.dataset, {0}, 1.0, rng), std::invalid_argument);
  TaskSolver solver(&har.dataset, har.partition.client_indices[0], 0.2, rng);
  tensor::Matrix w(2, 5);  // wrong feature count
  const tensor::Matrix omega = identity_omega(2);
  EXPECT_THROW(solver.train_local(w, 0, omega, 0.0, 5, 4, 0.1f),
               std::invalid_argument);
  tensor::Matrix w_ok(2, har.dataset.features());
  EXPECT_THROW(solver.train_local(w_ok, 5, omega, 0.0, 5, 4, 0.1f),
               std::invalid_argument);
}

TEST(MtlSimulation, MochaLearnsTheTasks) {
  data::HarData har = small_har();
  MtlSimulation sim(&har.dataset, har.partition,
                    std::make_unique<core::AcceptAllFilter>(), fast_options());
  const fl::SimulationResult r = sim.run();
  EXPECT_GT(r.final_accuracy, 0.7);
  EXPECT_EQ(r.total_rounds, 20u * r.history.size());
}

TEST(MtlSimulation, CmflReducesRoundsWithoutHurtingAccuracy) {
  data::HarData har = small_har();
  MtlSimulation vanilla(&har.dataset, har.partition,
                        std::make_unique<core::AcceptAllFilter>(),
                        fast_options());
  const fl::SimulationResult base = vanilla.run();

  data::HarData har2 = small_har();
  MtlSimulation filtered(
      &har2.dataset, har2.partition,
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.4)),
      fast_options());
  const fl::SimulationResult cmfl = filtered.run();

  EXPECT_LT(cmfl.total_rounds, base.total_rounds);
  EXPECT_GT(cmfl.final_accuracy, base.final_accuracy - 0.08);
}

TEST(MtlSimulation, EliminationsConcentrateOnOutliers) {
  // The paper's Fig. 6 premise: frequently-eliminated clients are mostly
  // the heavy-shift outliers.  Compare mean eliminations between the two
  // populations.
  util::Rng rng(3);
  data::SynthHarSpec spec;
  spec.clients = 30;
  spec.features = 48;
  spec.min_samples = 30;
  spec.max_samples = 60;
  spec.outlier_fraction = 0.3;
  spec.outlier_label_flip = 0.45;
  data::HarData har = data::make_synth_har(spec, rng);

  MtlOptions opt = fast_options();
  opt.max_iterations = 60;
  MtlSimulation sim(
      &har.dataset, har.partition,
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.4)), opt);
  const fl::SimulationResult r = sim.run();

  double outlier_elims = 0.0, normal_elims = 0.0;
  std::size_t outliers = 0, normals = 0;
  for (std::size_t k = 0; k < har.is_outlier.size(); ++k) {
    if (har.is_outlier[k]) {
      outlier_elims += static_cast<double>(r.eliminations_per_client[k]);
      ++outliers;
    } else {
      normal_elims += static_cast<double>(r.eliminations_per_client[k]);
      ++normals;
    }
  }
  ASSERT_GT(outliers, 0u);
  ASSERT_GT(normals, 0u);
  EXPECT_GT(outlier_elims / static_cast<double>(outliers),
            normal_elims / static_cast<double>(normals));
}

TEST(MtlSimulation, DeterministicForSeed) {
  data::HarData a = small_har();
  MtlSimulation sa(&a.dataset, a.partition,
                   std::make_unique<core::CmflFilter>(
                       core::Schedule::constant(0.4)),
                   fast_options());
  const auto ra = sa.run();
  data::HarData b = small_har();
  MtlSimulation sb(&b.dataset, b.partition,
                   std::make_unique<core::CmflFilter>(
                       core::Schedule::constant(0.4)),
                   fast_options());
  const auto rb = sb.run();
  EXPECT_EQ(ra.final_params, rb.final_params);
  EXPECT_EQ(ra.total_rounds, rb.total_rounds);
}

TEST(MtlSimulation, HingeLossVariantAlsoLearns) {
  data::HarData har = small_har();
  MtlOptions opt = fast_options();
  opt.loss = TaskLoss::kHinge;
  MtlSimulation sim(&har.dataset, har.partition,
                    std::make_unique<core::AcceptAllFilter>(), opt);
  const fl::SimulationResult r = sim.run();
  EXPECT_GT(r.final_accuracy, 0.65);
}

TEST(MtlSimulation, OmegaRefreshChangesTrajectory) {
  data::HarData a = small_har();
  MtlOptions with_omega = fast_options();
  with_omega.omega_every = 5;
  with_omega.lambda = 0.5;
  MtlSimulation sa(&a.dataset, a.partition,
                   std::make_unique<core::AcceptAllFilter>(), with_omega);
  const auto ra = sa.run();

  data::HarData b = small_har();
  MtlOptions no_omega = fast_options();
  no_omega.omega_every = 0;  // never refresh: identity coupling forever
  no_omega.lambda = 0.5;
  MtlSimulation sb(&b.dataset, b.partition,
                   std::make_unique<core::AcceptAllFilter>(), no_omega);
  const auto rb = sb.run();
  EXPECT_NE(ra.final_params, rb.final_params);
}

TEST(MtlSimulation, ConstructorValidation) {
  data::HarData har = small_har();
  EXPECT_THROW(MtlSimulation(nullptr, har.partition,
                             std::make_unique<core::AcceptAllFilter>(),
                             fast_options()),
               std::invalid_argument);
  EXPECT_THROW(MtlSimulation(&har.dataset, har.partition, nullptr,
                             fast_options()),
               std::invalid_argument);
  data::Partition empty;
  EXPECT_THROW(MtlSimulation(&har.dataset, empty,
                             std::make_unique<core::AcceptAllFilter>(),
                             fast_options()),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::mtl

// Durability tests for util/durable_file.h: sealed-file round trips, WAL
// recovery, the torn-tail rule, and an exhaustive corruption matrix — every
// single-bit flip and every truncation point must yield either a clean
// prefix recovery or a loud std::runtime_error, never silently wrong data.
#include "util/durable_file.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace cmfl::util {
namespace {

const std::array<char, 4> kMagic = {'T', 'E', 'S', 'T'};
constexpr std::uint32_t kVersion = 3;

std::vector<std::byte> bytes(const std::string& s) {
  std::vector<std::byte> out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

/// Fresh scratch directory per test; removed on destruction.
struct TempDir {
  TempDir() {
    dir = (std::filesystem::temp_directory_path() /
           ("cmfl_durable_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name()))
              .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::string path(const std::string& name) const { return dir + "/" + name; }
  std::string dir;
};

std::vector<std::uint8_t> read_raw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_raw(const std::string& path,
               const std::vector<std::uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
}

TEST(SealedFile, RoundTripAndReplacement) {
  TempDir tmp;
  const std::string path = tmp.path("blob");
  const auto payload = bytes("hello sealed world");
  save_sealed_file(path, kMagic, kVersion, payload);
  EXPECT_EQ(load_sealed_file(path, kMagic, kVersion), payload);

  // Atomic replacement: the new blob fully supersedes the old.
  const auto payload2 = bytes("v2");
  save_sealed_file(path, kMagic, kVersion, payload2);
  EXPECT_EQ(load_sealed_file(path, kMagic, kVersion), payload2);
  // No .tmp litter survives a successful save.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SealedFile, RejectsWrongMagicVersionAndMissing) {
  TempDir tmp;
  const std::string path = tmp.path("blob");
  save_sealed_file(path, kMagic, kVersion, bytes("x"));
  EXPECT_THROW(load_sealed_file(path, {'N', 'O', 'P', 'E'}, kVersion),
               std::runtime_error);
  EXPECT_THROW(load_sealed_file(path, kMagic, kVersion + 1),
               std::runtime_error);
  EXPECT_THROW(load_sealed_file(tmp.path("missing"), kMagic, kVersion),
               std::runtime_error);
}

TEST(SealedFile, EveryBitFlipIsDetected) {
  TempDir tmp;
  const std::string path = tmp.path("blob");
  save_sealed_file(path, kMagic, kVersion, bytes("payload-under-test"));
  const auto pristine = read_raw(path);
  ASSERT_FALSE(pristine.empty());
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      auto corrupt = pristine;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      write_raw(path, corrupt);
      EXPECT_THROW(load_sealed_file(path, kMagic, kVersion),
                   std::runtime_error)
          << "byte " << i << " bit " << bit << " slipped through";
    }
  }
}

TEST(SealedFile, EveryTruncationIsDetected) {
  TempDir tmp;
  const std::string path = tmp.path("blob");
  save_sealed_file(path, kMagic, kVersion, bytes("payload-under-test"));
  const auto pristine = read_raw(path);
  for (std::size_t keep = 0; keep < pristine.size(); ++keep) {
    write_raw(path, std::vector<std::uint8_t>(pristine.begin(),
                                              pristine.begin() +
                                                  static_cast<long>(keep)));
    EXPECT_THROW(load_sealed_file(path, kMagic, kVersion), std::runtime_error)
        << "truncation to " << keep << " bytes slipped through";
  }
}

TEST(DurableFile, AppendAndRecover) {
  TempDir tmp;
  const std::string path = tmp.path("wal");
  {
    DurableFile wal(path, kMagic, kVersion);
    wal.append(bytes("one"));
    wal.append(bytes("two"), /*sync_now=*/false);
    wal.append(bytes("three"), /*sync_now=*/false);
    wal.sync();
    EXPECT_EQ(wal.stats().records_appended, 3u);
    EXPECT_GE(wal.stats().fsync_calls, 2u);  // one per synced batch
    EXPECT_GT(wal.stats().bytes_fsynced, 0u);
  }
  DurableFile wal(path, kMagic, kVersion);
  const auto& rec = wal.recovered();
  ASSERT_EQ(rec.records.size(), 3u);
  EXPECT_EQ(rec.records[0], bytes("one"));
  EXPECT_EQ(rec.records[1], bytes("two"));
  EXPECT_EQ(rec.records[2], bytes("three"));
  EXPECT_FALSE(rec.tail_truncated);
  // Appending after recovery continues the same log.
  wal.append(bytes("four"));
  DurableFile again(path, kMagic, kVersion);
  ASSERT_EQ(again.recovered().records.size(), 4u);
  EXPECT_EQ(again.recovered().records[3], bytes("four"));
}

TEST(DurableFile, HeaderMismatchThrows) {
  TempDir tmp;
  const std::string path = tmp.path("wal");
  { DurableFile wal(path, kMagic, kVersion); }
  EXPECT_THROW(DurableFile(path, {'N', 'O', 'P', 'E'}, kVersion),
               std::runtime_error);
  EXPECT_THROW(DurableFile(path, kMagic, kVersion + 1), std::runtime_error);
}

TEST(DurableFile, TornTailIsTruncatedAndLogStaysUsable) {
  TempDir tmp;
  const std::string path = tmp.path("wal");
  {
    DurableFile wal(path, kMagic, kVersion);
    wal.append(bytes("keep-1"));
    wal.append(bytes("keep-2"));
    wal.append(bytes("torn"));
  }
  const auto pristine = read_raw(path);
  const auto spans = DurableFile::record_spans(path);
  ASSERT_EQ(spans.size(), 3u);
  // Cut inside the final record: a crash between write() and fsync().
  const std::uint64_t cut = spans[2].first + spans[2].second / 2;
  write_raw(path, std::vector<std::uint8_t>(
                      pristine.begin(),
                      pristine.begin() + static_cast<long>(cut)));
  DurableFile wal(path, kMagic, kVersion);
  EXPECT_TRUE(wal.recovered().tail_truncated);
  ASSERT_EQ(wal.recovered().records.size(), 2u);
  EXPECT_EQ(wal.recovered().records[1], bytes("keep-2"));
  // The torn bytes are physically gone and the log appends cleanly again.
  EXPECT_EQ(std::filesystem::file_size(path), spans[2].first);
  wal.append(bytes("after-crash"));
  DurableFile again(path, kMagic, kVersion);
  ASSERT_EQ(again.recovered().records.size(), 3u);
  EXPECT_EQ(again.recovered().records[2], bytes("after-crash"));
}

TEST(DurableFile, MidLogCorruptionRefusesLoudly) {
  TempDir tmp;
  const std::string path = tmp.path("wal");
  {
    DurableFile wal(path, kMagic, kVersion);
    wal.append(bytes("first"));
    wal.append(bytes("second"));
    wal.append(bytes("third"));
  }
  const auto pristine = read_raw(path);
  const auto spans = DurableFile::record_spans(path);
  ASSERT_EQ(spans.size(), 3u);
  // Damage the *middle* record: valid records follow, so this is media
  // corruption, not a torn write — recovery must refuse to drop committed
  // records silently.
  auto corrupt = pristine;
  corrupt[spans[1].first + spans[1].second - 1] ^= 0x01;
  write_raw(path, corrupt);
  EXPECT_THROW(DurableFile(path, kMagic, kVersion), std::runtime_error);
}

TEST(DurableFile, RewriteReplacesLogAtomically) {
  TempDir tmp;
  const std::string path = tmp.path("wal");
  {
    DurableFile wal(path, kMagic, kVersion);
    for (int i = 0; i < 10; ++i) wal.append(bytes("old-" + std::to_string(i)));
  }
  const std::vector<std::vector<std::byte>> records = {bytes("new-a"),
                                                       bytes("new-b")};
  const std::uint64_t written =
      DurableFile::rewrite(path, kMagic, kVersion, records);
  EXPECT_EQ(written, std::filesystem::file_size(path));
  DurableFile wal(path, kMagic, kVersion);
  ASSERT_EQ(wal.recovered().records.size(), 2u);
  EXPECT_EQ(wal.recovered().records[0], bytes("new-a"));
  EXPECT_EQ(wal.recovered().records[1], bytes("new-b"));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// The heart of the durability claim: for EVERY possible single-bit flip and
// EVERY truncation point of a multi-record WAL, reopening either recovers a
// clean prefix of the original records or throws — it never produces a
// record sequence that is not a prefix, and never invents data.
TEST(DurableFile, ExhaustiveSingleBitFlipMatrixRecoversPrefixOrThrows) {
  TempDir tmp;
  const std::string path = tmp.path("wal");
  const std::vector<std::vector<std::byte>> original = {
      bytes("alpha"), bytes("bravo-longer-record"), bytes("charlie")};
  {
    DurableFile wal(path, kMagic, kVersion);
    for (const auto& r : original) wal.append(r);
  }
  const auto pristine = read_raw(path);
  std::size_t recovered_runs = 0;
  std::size_t loud_failures = 0;
  for (std::size_t i = 0; i < pristine.size(); ++i) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      auto corrupt = pristine;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      write_raw(path, corrupt);
      try {
        DurableFile wal(path, kMagic, kVersion);
        const auto& records = wal.recovered().records;
        ASSERT_LE(records.size(), original.size());
        for (std::size_t k = 0; k < records.size(); ++k) {
          ASSERT_EQ(records[k], original[k])
              << "byte " << i << " bit " << bit
              << ": recovered record " << k << " diverges from the original";
        }
        ++recovered_runs;
      } catch (const std::runtime_error&) {
        ++loud_failures;
      }
    }
  }
  // Both outcomes must actually occur across the matrix (tail flips recover
  // a prefix, mid-log flips throw) — otherwise the test is vacuous.
  EXPECT_GT(recovered_runs, 0u);
  EXPECT_GT(loud_failures, 0u);
}

TEST(DurableFile, ExhaustiveTruncationMatrixRecoversPrefixOrThrows) {
  TempDir tmp;
  const std::string path = tmp.path("wal");
  const std::vector<std::vector<std::byte>> original = {
      bytes("alpha"), bytes("bravo-longer-record"), bytes("charlie")};
  {
    DurableFile wal(path, kMagic, kVersion);
    for (const auto& r : original) wal.append(r);
  }
  const auto pristine = read_raw(path);
  for (std::size_t keep = 0; keep <= pristine.size(); ++keep) {
    write_raw(path, std::vector<std::uint8_t>(
                        pristine.begin(),
                        pristine.begin() + static_cast<long>(keep)));
    try {
      DurableFile wal(path, kMagic, kVersion);
      const auto& records = wal.recovered().records;
      ASSERT_LE(records.size(), original.size());
      for (std::size_t k = 0; k < records.size(); ++k) {
        ASSERT_EQ(records[k], original[k])
            << "truncation to " << keep << " bytes diverges at record " << k;
      }
    } catch (const std::runtime_error&) {
      // Loud failure (e.g. a cut inside the 8-byte header) is acceptable;
      // silence with wrong data is not.
    }
  }
}

TEST(DurableFile, RecordSpansStopAtFirstBadRecord) {
  TempDir tmp;
  const std::string path = tmp.path("wal");
  {
    DurableFile wal(path, kMagic, kVersion);
    wal.append(bytes("a"));
    wal.append(bytes("b"));
  }
  auto spans = DurableFile::record_spans(path);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].first, DurableFile::kHeaderBytes);
  // Damage the first record: the lenient scan reports nothing after it.
  auto raw = read_raw(path);
  raw[spans[0].first + DurableFile::kRecordHeaderBytes] ^= 0xff;
  write_raw(path, raw);
  EXPECT_TRUE(DurableFile::record_spans(path).empty());
  EXPECT_TRUE(DurableFile::record_spans(tmp.path("missing")).empty());
}

}  // namespace
}  // namespace cmfl::util

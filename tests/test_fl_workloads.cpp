// Workload builders: wiring, shapes, evaluator sanity, determinism.
#include <gtest/gtest.h>

#include "fl/workloads.h"

namespace cmfl::fl {
namespace {

TEST(DigitsMlpWorkload, BuildsConsistentClients) {
  DigitsMlpSpec spec;
  spec.clients = 6;
  spec.train_samples = 120;
  spec.test_samples = 40;
  spec.digits.image_size = 8;
  Workload w = make_digits_mlp_workload(spec);
  ASSERT_EQ(w.clients.size(), 6u);
  for (const auto& c : w.clients) {
    EXPECT_EQ(c->param_count(), w.param_count);
    EXPECT_GT(c->local_samples(), 0u);
  }
  EXPECT_NE(w.description.find("digits_mlp"), std::string::npos);
}

TEST(DigitsMlpWorkload, ClientsStartIdentical) {
  DigitsMlpSpec spec;
  spec.clients = 3;
  spec.train_samples = 60;
  spec.test_samples = 20;
  spec.digits.image_size = 8;
  Workload w = make_digits_mlp_workload(spec);
  std::vector<float> p0(w.param_count), p1(w.param_count);
  w.clients[0]->get_params(p0);
  w.clients[1]->get_params(p1);
  EXPECT_EQ(p0, p1);
}

TEST(DigitsMlpWorkload, EvaluatorScoresRandomModelAtChance) {
  DigitsMlpSpec spec;
  spec.clients = 4;
  spec.train_samples = 80;
  spec.test_samples = 200;
  spec.digits.image_size = 8;
  Workload w = make_digits_mlp_workload(spec);
  std::vector<float> params(w.param_count);
  w.clients[0]->get_params(params);
  const nn::EvalResult eval = w.evaluator(params);
  EXPECT_EQ(eval.samples, 200u);
  EXPECT_GT(eval.accuracy, 0.0);
  EXPECT_LT(eval.accuracy, 0.5);  // untrained: near 10% chance
}

TEST(DigitsMlpWorkload, PartitionKinds) {
  DigitsMlpSpec spec;
  spec.clients = 5;
  spec.train_samples = 100;
  spec.test_samples = 20;
  spec.digits.image_size = 8;
  for (const char* kind : {"label_sorted", "sharded", "iid"}) {
    spec.partition = kind;
    EXPECT_NO_THROW(make_digits_mlp_workload(spec)) << kind;
  }
  spec.partition = "bogus";
  EXPECT_THROW(make_digits_mlp_workload(spec), std::invalid_argument);
}

TEST(DigitsMlpPopulation, FactoryMatchesEagerClientsExactly) {
  DigitsMlpSpec spec;
  spec.clients = 5;
  spec.train_samples = 100;
  spec.test_samples = 30;
  spec.digits.image_size = 8;
  Workload eager = make_digits_mlp_workload(spec);
  PopulationWorkload lazy = make_digits_mlp_population(spec);
  EXPECT_EQ(lazy.param_count, eager.param_count);

  for (const std::size_t k : {0u, 2u, 4u}) {
    auto made = lazy.factory(k);
    ASSERT_TRUE(made);
    EXPECT_EQ(made->local_samples(), eager.clients[k]->local_samples());
    // Identical initial weights, identical RNG stream: one local training
    // pass must land both on bit-equal parameters.
    std::vector<float> a(eager.param_count);
    std::vector<float> b(eager.param_count);
    made->get_params(b);
    eager.clients[k]->get_params(a);
    EXPECT_EQ(a, b) << "initial params differ for device " << k;
    eager.clients[k]->train_local(1, 2, 0.1f);
    made->train_local(1, 2, 0.1f);
    eager.clients[k]->get_params(a);
    made->get_params(b);
    EXPECT_EQ(a, b) << "post-training params differ for device " << k;
    EXPECT_EQ(made->mutable_state(), eager.clients[k]->mutable_state());
  }

  // The two evaluators are the same model over the same test set.
  std::vector<float> params(eager.param_count);
  eager.clients[0]->get_params(params);
  const auto ea = eager.evaluator(params);
  const auto eb = lazy.evaluator(params);
  EXPECT_EQ(ea.accuracy, eb.accuracy);
  EXPECT_EQ(ea.loss, eb.loss);
  EXPECT_THROW(lazy.factory(spec.clients), std::out_of_range);
}

TEST(DigitsCnnWorkload, RejectsMismatchedImageSizes) {
  DigitsCnnSpec spec;
  spec.cnn.image_size = 12;
  spec.digits.image_size = 16;
  EXPECT_THROW(make_digits_cnn_workload(spec), std::invalid_argument);
}

TEST(DigitsCnnWorkload, BuildsAndEvaluates) {
  DigitsCnnSpec spec;
  spec.clients = 4;
  spec.train_samples = 80;
  spec.test_samples = 40;
  spec.cnn.image_size = 12;
  spec.cnn.conv1_filters = 2;
  spec.cnn.conv2_filters = 4;
  spec.cnn.fc_width = 16;
  spec.digits.image_size = 12;
  Workload w = make_digits_cnn_workload(spec);
  EXPECT_EQ(w.clients.size(), 4u);
  std::vector<float> params(w.param_count);
  w.clients[0]->get_params(params);
  const nn::EvalResult eval = w.evaluator(params);
  EXPECT_EQ(eval.samples, 40u);
}

TEST(NwpWorkload, SplitsTrainAndTestPerRole) {
  NwpLstmSpec spec;
  spec.text.roles = 5;
  spec.text.words_per_role = 40;
  spec.text.seq_len = 4;
  spec.lm.embed_dim = 4;
  spec.lm.hidden_dim = 6;
  spec.test_fraction = 0.25;
  Workload w = make_nwp_lstm_workload(spec);
  EXPECT_EQ(w.clients.size(), 5u);
  std::vector<float> params(w.param_count);
  w.clients[0]->get_params(params);
  const nn::EvalResult eval = w.evaluator(params);
  // Every role contributes at least one test window.
  EXPECT_GE(eval.samples, 5u);
}

TEST(NwpWorkload, Validation) {
  NwpLstmSpec spec;
  spec.test_fraction = 0.0;
  EXPECT_THROW(make_nwp_lstm_workload(spec), std::invalid_argument);
  spec.test_fraction = 1.0;
  EXPECT_THROW(make_nwp_lstm_workload(spec), std::invalid_argument);
}

TEST(NwpWorkload, DeterministicForSeed) {
  NwpLstmSpec spec;
  spec.text.roles = 4;
  spec.text.words_per_role = 30;
  spec.text.seq_len = 4;
  spec.lm.embed_dim = 4;
  spec.lm.hidden_dim = 4;
  Workload a = make_nwp_lstm_workload(spec);
  Workload b = make_nwp_lstm_workload(spec);
  std::vector<float> pa(a.param_count), pb(b.param_count);
  a.clients[2]->get_params(pa);
  b.clients[2]->get_params(pb);
  EXPECT_EQ(pa, pb);
}

TEST(CaptureClientParams, SnapshotsLocalModels) {
  DigitsMlpSpec spec;
  spec.clients = 4;
  spec.train_samples = 80;
  spec.test_samples = 20;
  spec.digits.image_size = 8;
  Workload w = make_digits_mlp_workload(spec);
  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 5;
  opt.learning_rate = core::Schedule::constant(0.05);
  opt.max_iterations = 3;
  opt.eval_every = 3;
  opt.capture_client_params = true;
  FederatedSimulation sim(std::move(w.clients),
                          std::make_unique<core::AcceptAllFilter>(),
                          w.evaluator, opt);
  const SimulationResult r = sim.run();
  ASSERT_EQ(r.client_params.size(), 4u);
  for (const auto& p : r.client_params) {
    EXPECT_EQ(p.size(), r.final_params.size());
  }
  // Clients trained on different shards must end at different local models.
  EXPECT_NE(r.client_params[0], r.client_params[1]);
}

}  // namespace
}  // namespace cmfl::fl

#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "nn/feed_forward.h"
#include "util/rng.h"

namespace cmfl::nn {
namespace {

/// Minimizes f(x) = ½‖x − target‖² with the given optimizer; returns the
/// final distance to the target.
double optimize_quadratic(Optimizer& opt, int steps, float lr) {
  std::vector<float> x = {5.0f, -3.0f, 2.0f};
  const std::vector<float> target = {1.0f, 1.0f, 1.0f};
  std::vector<float> g(3);
  ParamPack params({std::span<float>(x)});
  for (int s = 0; s < steps; ++s) {
    for (std::size_t i = 0; i < 3; ++i) g[i] = x[i] - target[i];
    ParamPack grads({std::span<float>(g)});
    opt.step(params, grads, lr);
  }
  double dist = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    dist += (x[i] - target[i]) * (x[i] - target[i]);
  }
  return std::sqrt(dist);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Sgd sgd;
  EXPECT_LT(optimize_quadratic(sgd, 100, 0.1f), 1e-3);
}

TEST(Sgd, MatchesManualAxpy) {
  std::vector<float> x = {1.0f, 2.0f};
  std::vector<float> g = {0.5f, -1.0f};
  ParamPack params({std::span<float>(x)});
  ParamPack grads({std::span<float>(g)});
  Sgd sgd;
  sgd.step(params, grads, 0.1f);
  EXPECT_FLOAT_EQ(x[0], 0.95f);
  EXPECT_FLOAT_EQ(x[1], 2.1f);
}

TEST(MomentumSgd, ConvergesAndAcceleratesEarly) {
  MomentumSgd momentum(0.9f);
  EXPECT_LT(optimize_quadratic(momentum, 200, 0.02f), 1e-2);
  // Momentum accumulates: two identical-gradient steps move further than
  // twice one step.
  std::vector<float> x = {0.0f};
  std::vector<float> g = {1.0f};
  ParamPack params({std::span<float>(x)});
  ParamPack grads({std::span<float>(g)});
  MomentumSgd m2(0.5f);
  m2.step(params, grads, 1.0f);
  const float after_one = x[0];
  m2.step(params, grads, 1.0f);
  EXPECT_LT(x[0], 2.0f * after_one - 0.4f);  // -1, then -2.5 total
}

TEST(MomentumSgd, RejectsBadMomentum) {
  EXPECT_THROW(MomentumSgd(1.0f), std::invalid_argument);
  EXPECT_THROW(MomentumSgd(-0.1f), std::invalid_argument);
}

TEST(MomentumSgd, ResetClearsVelocity) {
  std::vector<float> x = {0.0f};
  std::vector<float> g = {1.0f};
  ParamPack params({std::span<float>(x)});
  ParamPack grads({std::span<float>(g)});
  MomentumSgd m(0.9f);
  m.step(params, grads, 1.0f);
  m.reset();
  const float before = x[0];
  m.step(params, grads, 1.0f);
  EXPECT_FLOAT_EQ(x[0], before - 1.0f);  // no carried velocity
}

TEST(Adam, ConvergesOnQuadratic) {
  Adam adam;
  EXPECT_LT(optimize_quadratic(adam, 400, 0.1f), 1e-2);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, the very first Adam step ≈ lr·sign(g).
  std::vector<float> x = {0.0f, 0.0f};
  std::vector<float> g = {0.001f, -5.0f};
  ParamPack params({std::span<float>(x)});
  ParamPack grads({std::span<float>(g)});
  Adam adam;
  adam.step(params, grads, 0.1f);
  EXPECT_NEAR(x[0], -0.1f, 2e-3);
  EXPECT_NEAR(x[1], 0.1f, 2e-3);
}

TEST(Adam, PackSizeChangeRejected) {
  Adam adam;
  std::vector<float> x = {0.0f};
  std::vector<float> g = {1.0f};
  ParamPack p1({std::span<float>(x)});
  ParamPack g1({std::span<float>(g)});
  adam.step(p1, g1, 0.1f);
  std::vector<float> x2 = {0.0f, 0.0f};
  std::vector<float> g2 = {1.0f, 1.0f};
  ParamPack p2({std::span<float>(x2)});
  ParamPack gg2({std::span<float>(g2)});
  EXPECT_THROW(adam.step(p2, gg2, 0.1f), std::invalid_argument);
}

TEST(MakeOptimizer, FactoryDispatch) {
  EXPECT_EQ(make_optimizer("sgd")->name(), "sgd");
  EXPECT_EQ(make_optimizer("adam")->name(), "adam");
  EXPECT_NE(make_optimizer("momentum")->name().find("momentum"),
            std::string::npos);
  EXPECT_NE(make_optimizer("momentum:0.5")->name().find("0.5"),
            std::string::npos);
  EXPECT_THROW(make_optimizer("lbfgs"), std::invalid_argument);
}

TEST(FeedForwardWithOptimizer, AdamTrainsModel) {
  util::Rng rng(3);
  FeedForward model = make_mlp(6, {12}, 2, rng);
  tensor::Matrix x(16, 6);
  std::vector<int> y(16);
  for (std::size_t i = 0; i < 16; ++i) {
    y[i] = static_cast<int>(i % 2);
    for (std::size_t j = 0; j < 6; ++j) {
      x.at(i, j) = (y[i] ? 1.0f : -1.0f) + rng.normal_f(0.0f, 0.3f);
    }
  }
  Adam adam;
  const double before = model.evaluate(x, y).loss;
  for (int step = 0; step < 60; ++step) {
    model.train_batch(x, y, adam, 0.05f);
  }
  EXPECT_LT(model.evaluate(x, y).loss, before * 0.5);
}

}  // namespace
}  // namespace cmfl::nn

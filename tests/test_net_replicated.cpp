// Replicated control plane end-to-end: master failover must be invisible in
// the learning trajectory.
//
// The headline invariants (DESIGN.md §14):
//   * A fault-free replicated run is bit-identical to the single-master run
//     — replication changes where control state lives, not what it is.
//   * Killing the leader mid-round loses nothing: the surviving quorum
//     re-drives the round from the committed prefix and finishes it
//     bit-identically (params, history, and the accuracy-vs-bytes
//     footprint).
//   * Every replica independently writes the same checkpoint bytes, so
//     resume works from any replica's file.
//
// These tests run under the `failover` ctest label; bench/run_failover.sh
// runs them under ASan/UBSan and TSan.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/filter.h"
#include "fl/checkpoint.h"
#include "fl/convex_testbed.h"
#include "net/cluster.h"

namespace cmfl::net {
namespace {

fl::ConvexTestbedSpec convex_spec() {
  fl::ConvexTestbedSpec spec;
  spec.clients = 4;
  spec.dim = 8;
  spec.local_steps = 3;
  spec.gradient_noise = 0.02;
  return spec;
}

ClusterOptions base_options() {
  ClusterOptions opt;
  opt.fl.local_epochs = 1;
  opt.fl.batch_size = 1;
  opt.fl.learning_rate = core::Schedule::constant(0.1);
  opt.fl.max_iterations = 8;
  opt.fl.eval_every = 2;
  return opt;
}

ClusterOptions replicated(ClusterOptions opt) {
  opt.replication.replicas = 3;
  return opt;
}

ClusterResult run_once(const ClusterOptions& opt) {
  fl::ConvexWorkload w = fl::make_convex_workload(convex_spec());
  FlCluster cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.3)),
      w.evaluator, opt);
  return cluster.run();
}

void expect_same_trajectory(const ClusterResult& a, const ClusterResult& b) {
  ASSERT_EQ(a.sim.history.size(), b.sim.history.size());
  for (std::size_t i = 0; i < a.sim.history.size(); ++i) {
    EXPECT_TRUE(fl::bitwise_equal(a.sim.history[i], b.sim.history[i]))
        << "iteration record " << i;
  }
  EXPECT_EQ(a.sim.final_params, b.sim.final_params);
  EXPECT_EQ(a.sim.eliminations_per_client, b.sim.eliminations_per_client);
  EXPECT_EQ(a.sim.uploads_per_client, b.sim.uploads_per_client);
  EXPECT_EQ(a.sim.total_rounds, b.sim.total_rounds);
  EXPECT_EQ(a.sim.uploaded_bytes, b.sim.uploaded_bytes);
  EXPECT_EQ(a.upload_messages, b.upload_messages);
  EXPECT_EQ(a.elimination_messages, b.elimination_messages);
  EXPECT_EQ(a.simulated_transfer_seconds, b.simulated_transfer_seconds);
  ASSERT_EQ(a.footprint.size(), b.footprint.size());
  for (std::size_t i = 0; i < a.footprint.size(); ++i) {
    EXPECT_EQ(a.footprint[i].iteration, b.footprint[i].iteration);
    EXPECT_EQ(a.footprint[i].accuracy, b.footprint[i].accuracy);
    EXPECT_EQ(a.footprint[i].uplink_bytes, b.footprint[i].uplink_bytes);
  }
}

TEST(ReplicatedCluster, OptionValidation) {
  auto make = [](const ClusterOptions& opt) {
    fl::ConvexWorkload w = fl::make_convex_workload(convex_spec());
    FlCluster cluster(std::move(w.clients),
                      std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                      opt);
  };
  {
    auto opt = base_options();
    opt.replication.replicas = 2;  // a crash would lose quorum
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = replicated(base_options());
    opt.recovery.quorum = 0.5;  // committed cohort must be replicated state
    opt.recovery.round_timeout_s = 0.1;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = replicated(base_options());
    opt.recovery.first_k_reports = 2;
    opt.recovery.round_timeout_s = 0.1;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = replicated(base_options());
    opt.recovery.suspect_after_stale_rounds = 2;
    opt.recovery.round_timeout_s = 0.1;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = base_options();  // schedules need replication
    opt.fault.leader_crash.push_back({2, 0});
    opt.recovery.round_timeout_s = 0.1;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = replicated(base_options());
    // Two scheduled kills on 3 replicas would leave no quorum.
    opt.fault.leader_crash.push_back({2, 0});
    opt.fault.leader_crash.push_back({4, 0});
    opt.recovery.round_timeout_s = 0.1;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = replicated(base_options());
    opt.fault.replica_partition[7] = {2, 4};  // replica id out of range
    opt.recovery.round_timeout_s = 0.1;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = replicated(base_options());
    opt.replication.tick_interval_s = 0.0;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  { EXPECT_NO_THROW(make(replicated(base_options()))); }
}

TEST(ReplicatedCluster, FaultFreeRunMatchesSingleMasterBitForBit) {
  const ClusterResult single = run_once(base_options());
  const ClusterResult triple = run_once(replicated(base_options()));

  expect_same_trajectory(single, triple);
  // Fault-free: physical data-plane traffic equals the logical accounting.
  EXPECT_EQ(triple.uplink_bytes, single.uplink_bytes);
  EXPECT_EQ(triple.downlink_bytes, single.downlink_bytes);
  EXPECT_EQ(triple.uplink_retransmitted_bytes, 0u);
  EXPECT_EQ(triple.downlink_retransmitted_bytes, 0u);
  // The control plane is real and metered apart from the data plane.
  EXPECT_GT(triple.faults.elections_held, 0u);
  EXPECT_GT(triple.faults.log_entries_replicated, 0u);
  EXPECT_GT(triple.control_plane_bytes, 0u);
  EXPECT_EQ(triple.faults.leader_crashes, 0u);
  EXPECT_EQ(single.control_plane_bytes, 0u);
  EXPECT_EQ(single.faults.elections_held, 0u);
}

TEST(ReplicatedCluster, LeaderCrashMidRoundRecoversBitIdentically) {
  // The tentpole property.  The leader of round 3 dies after accepting two
  // of four replies — with the round's control state partially replicated.
  // The surviving quorum elects a new leader, which re-broadcasts the open
  // round; workers re-send their cached (byte-identical) replies; the round
  // commits exactly as if nothing had happened.
  const ClusterResult baseline = run_once(replicated(base_options()));

  auto opt = replicated(base_options());
  opt.fault.leader_crash.push_back({3, 2});
  opt.recovery.round_timeout_s = 0.5;
  opt.recovery.max_attempts = 10;
  const ClusterResult crashed = run_once(opt);

  expect_same_trajectory(baseline, crashed);
  EXPECT_EQ(crashed.faults.leader_crashes, 1u);
  // The original election plus at least the failover election.
  EXPECT_GE(crashed.faults.elections_held, 2u);
  EXPECT_TRUE(crashed.faults.crashed_workers.empty());
  // Recovery traffic is visible in the *physical* meters only: the new
  // leader's re-broadcasts and the workers' cached re-uploads.
  EXPECT_GT(crashed.downlink_retransmitted_bytes, 0u);
  EXPECT_GT(crashed.uplink_retransmitted_bytes, 0u);
  EXPECT_GT(crashed.faults.retransmits, 0u);
  // ...and never in the logical accounting the trajectory is built from.
  EXPECT_EQ(crashed.sim.uploaded_bytes, baseline.sim.uploaded_bytes);
}

TEST(ReplicatedCluster, LeaderCrashRightAfterBroadcastRecovers) {
  // after_replies == 0: the round dies before any reply lands.  Every
  // worker's reply goes to a dead replica; the new leader re-broadcasts and
  // collects all four cached replies.
  const ClusterResult baseline = run_once(replicated(base_options()));

  auto opt = replicated(base_options());
  opt.fault.leader_crash.push_back({2, 0});
  opt.recovery.round_timeout_s = 0.5;
  opt.recovery.max_attempts = 10;
  const ClusterResult crashed = run_once(opt);

  expect_same_trajectory(baseline, crashed);
  EXPECT_EQ(crashed.faults.leader_crashes, 1u);
}

TEST(ReplicatedCluster, PartitionedReplicaIsCaughtUpBySnapshot) {
  // Replica 1 loses control-plane connectivity while rounds 2..5 are in
  // flight.  The survivors keep committing (2 of 3), compact the log at
  // every round commit, and after the heal the only way back is a snapshot
  // transfer.  Training never notices.
  const ClusterResult baseline = run_once(replicated(base_options()));

  auto opt = replicated(base_options());
  opt.fault.replica_partition[1] = {2, 5};
  opt.recovery.round_timeout_s = 0.5;
  opt.recovery.max_attempts = 10;
  const ClusterResult partitioned = run_once(opt);

  expect_same_trajectory(baseline, partitioned);
  EXPECT_GE(partitioned.faults.snapshot_transfers, 1u);
  EXPECT_EQ(partitioned.faults.leader_crashes, 0u);
  EXPECT_TRUE(partitioned.faults.crashed_workers.empty());
}

TEST(ReplicatedCluster, CodecRunsMatchTheSingleMasterBitForBit) {
  // Codecs ride the replicated control plane: the leader decodes each
  // CodecUpload with its private stateless decoder before proposing the
  // dense reconstruction into the Raft log, so the replicated trajectory —
  // and the encoded-frame byte accounting — must equal the single-master
  // run exactly.
  for (const char* spec : {"sign", "quant:8", "topk:0.1"}) {
    SCOPED_TRACE(spec);
    auto opt = base_options();
    opt.fl.codec.spec = spec;
    const ClusterResult single = run_once(opt);
    const ClusterResult triple = run_once(replicated(opt));
    expect_same_trajectory(single, triple);
    EXPECT_EQ(triple.uplink_bytes, single.uplink_bytes);
  }
}

TEST(ReplicatedCluster, CodecRunSurvivesLeaderFailoverBitIdentically) {
  // Failover with a stateful *encoder*: the quant codec's rounding RNG
  // advances once per trained round and the worker re-sends its cached
  // encoded reply to the new leader, so a mid-round leader crash changes
  // nothing in the trajectory.
  auto opt = replicated(base_options());
  opt.fl.codec.spec = "quant:8";
  const ClusterResult baseline = run_once(opt);

  auto crash_opt = opt;
  crash_opt.fault.leader_crash.push_back({3, 2});
  crash_opt.recovery.round_timeout_s = 0.5;
  crash_opt.recovery.max_attempts = 10;
  const ClusterResult crashed = run_once(crash_opt);

  expect_same_trajectory(baseline, crashed);
  EXPECT_EQ(crashed.faults.leader_crashes, 1u);
  EXPECT_GT(crashed.uplink_retransmitted_bytes, 0u);
}

TEST(ReplicatedCluster, StatefulDecodeCodecsAreRejectedUpFront) {
  // The codebook codec's decode() caches state, so after a failover the new
  // leader could not decode an index-only payload it never saw the refresh
  // for.  The constructor must refuse the combination rather than fail
  // mid-run — and accept the same codec on a single master.
  auto opt = replicated(base_options());
  opt.fl.codec.spec = "codebook:8,4";
  fl::ConvexWorkload w = fl::make_convex_workload(convex_spec());
  EXPECT_THROW(
      FlCluster(std::move(w.clients),
                std::make_unique<core::AcceptAllFilter>(), w.evaluator, opt),
      std::invalid_argument);

  opt.replication.replicas = 0;
  fl::ConvexWorkload w2 = fl::make_convex_workload(convex_spec());
  EXPECT_NO_THROW(FlCluster(std::move(w2.clients),
                            std::make_unique<core::AcceptAllFilter>(),
                            w2.evaluator, opt));
}

TEST(ReplicatedCluster, EveryReplicaWritesTheSameCheckpointAndResumeWorks) {
  const std::string ref_path =
      ::testing::TempDir() + "replicated_ck_ref.bin";
  const std::string path = ::testing::TempDir() + "replicated_ck.bin";
  for (int r = 0; r < 3; ++r) {
    std::remove((ref_path + ".replica" + std::to_string(r)).c_str());
    std::remove((path + ".replica" + std::to_string(r)).c_str());
  }

  auto opt = replicated(base_options());  // 8 iterations, eval_every 2
  opt.fl.checkpoint_every = 4;
  opt.fl.checkpoint_path = ref_path;
  const ClusterResult uninterrupted = run_once(opt);

  {
    auto first_half = opt;
    first_half.fl.max_iterations = 4;
    first_half.fl.checkpoint_path = path;
    run_once(first_half);
  }

  // All three replicas persisted the round-4 checkpoint, byte-for-byte
  // identically — each one serialized the same replicated state machine.
  auto file_bytes = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in.good()) << p;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string replica0 = file_bytes(path + ".replica0");
  EXPECT_FALSE(replica0.empty());
  EXPECT_EQ(file_bytes(path + ".replica1"), replica0);
  EXPECT_EQ(file_bytes(path + ".replica2"), replica0);

  // Resume from an arbitrary replica's file; the finished trajectory must
  // match the uninterrupted replicated run exactly.
  const fl::TrainerCheckpoint ck =
      fl::load_checkpoint_file(path + ".replica2");
  EXPECT_EQ(ck.iteration, 4u);
  auto resume_opt = opt;
  resume_opt.fl.checkpoint_path = path;
  fl::ConvexWorkload w = fl::make_convex_workload(convex_spec());
  FlCluster resumed_cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.3)),
      w.evaluator, resume_opt);
  const ClusterResult resumed = resumed_cluster.resume(ck);

  expect_same_trajectory(uninterrupted, resumed);
  for (int r = 0; r < 3; ++r) {
    std::remove((ref_path + ".replica" + std::to_string(r)).c_str());
    std::remove((path + ".replica" + std::to_string(r)).c_str());
  }
}

TEST(ReplicatedCluster, RedirectAndLeaderIdFramesRoundTrip) {
  // Wire-level check for the two protocol additions: BroadcastMsg carries
  // the sending replica's id, and RedirectMsg tells a worker where to
  // re-send a reply that landed on a deposed leader.
  BroadcastMsg bc;
  bc.seq = 9;
  bc.iteration = 9;
  bc.leader_id = 2;
  bc.global_params = {1.0f, 2.0f};
  bc.global_update = {0.5f};
  bc.learning_rate = 0.25f;
  const Message round_tripped = decode(encode(Message(bc)));
  const auto& back = std::get<BroadcastMsg>(round_tripped);
  EXPECT_EQ(back.leader_id, 2u);
  EXPECT_EQ(back.seq, 9u);
  EXPECT_EQ(back.global_params, bc.global_params);

  RedirectMsg rd;
  rd.iteration = 7;
  rd.leader_id = 1;
  const Message rd_back = decode(encode(Message(rd)));
  const auto& rd2 = std::get<RedirectMsg>(rd_back);
  EXPECT_EQ(rd2.iteration, 7u);
  EXPECT_EQ(rd2.leader_id, 1u);
  // Broadcast frame size must not depend on which replica leads — the
  // RoundStart log entry carries one byte count all replicas account.
  auto from_leader = [&](std::uint32_t id) {
    BroadcastMsg m = bc;
    m.leader_id = id;
    return encode(Message(m)).size();
  };
  EXPECT_EQ(from_leader(0), from_leader(2));
}

}  // namespace
}  // namespace cmfl::net

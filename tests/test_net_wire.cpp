#include "net/message.h"
#include "net/wire.h"

#include <gtest/gtest.h>

namespace cmfl::net {
namespace {

TEST(Wire, PodRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEF);
  w.u64(0x123456789ABCDEF0ULL);
  w.f32(3.25f);
  w.f64(-1.5);
  const auto buf = w.take();
  WireReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x123456789ABCDEF0ULL);
  EXPECT_FLOAT_EQ(r.f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.f64(), -1.5);
  EXPECT_TRUE(r.done());
}

TEST(Wire, FloatArrayRoundTrip) {
  WireWriter w;
  const std::vector<float> data = {1.0f, -2.5f, 0.0f};
  w.floats(data);
  const auto buf = w.take();
  WireReader r(buf);
  EXPECT_EQ(r.floats(), data);
}

TEST(Wire, TruncatedReadThrows) {
  WireWriter w;
  w.u32(42);
  const auto buf = w.take();
  WireReader r(buf);
  r.u32();
  EXPECT_THROW(r.u8(), std::runtime_error);
}

TEST(Wire, OversizedArrayLengthRejected) {
  WireWriter w;
  w.u64(1ULL << 60);  // claims an absurd float count
  const auto buf = w.take();
  WireReader r(buf);
  EXPECT_THROW(r.floats(), std::runtime_error);
}

TEST(Message, BroadcastRoundTrip) {
  BroadcastMsg b;
  b.seq = 99;
  b.iteration = 42;
  b.learning_rate = 0.05f;
  b.global_params = {1.0f, 2.0f, 3.0f};
  b.global_update = {-0.1f, 0.2f, 0.0f};
  const auto frame = encode(Message(b));
  const Message decoded = decode(frame);
  const auto& d = std::get<BroadcastMsg>(decoded);
  EXPECT_EQ(d.seq, 99u);
  EXPECT_EQ(d.iteration, 42u);
  EXPECT_FLOAT_EQ(d.learning_rate, 0.05f);
  EXPECT_EQ(d.global_params, b.global_params);
  EXPECT_EQ(d.global_update, b.global_update);
}

TEST(Message, UpdateUploadRoundTrip) {
  UpdateUploadMsg u;
  u.seq = 4;
  u.iteration = 7;
  u.client_id = 13;
  u.update = {0.5f, -0.5f};
  u.score = 0.75;
  const auto frame = encode(Message(u));
  const Message decoded = decode(frame);
  const auto& d = std::get<UpdateUploadMsg>(decoded);
  EXPECT_EQ(d.seq, 4u);
  EXPECT_EQ(d.iteration, 7u);
  EXPECT_EQ(d.client_id, 13u);
  EXPECT_EQ(d.update, u.update);
  EXPECT_DOUBLE_EQ(d.score, 0.75);
}

TEST(Message, EliminationRoundTripAndSize) {
  EliminationMsg e;
  e.seq = 8;
  e.iteration = 3;
  e.client_id = 5;
  e.score = 0.31;
  const auto frame = encode(Message(e));
  const Message decoded = decode(frame);
  const auto& d = std::get<EliminationMsg>(decoded);
  EXPECT_EQ(d.seq, 8u);
  EXPECT_EQ(d.client_id, 5u);
  EXPECT_DOUBLE_EQ(d.score, 0.31);
  // "The transferred data size of this status information is negligible":
  // the elimination frame is fixed-size and tiny.
  EXPECT_LE(frame.size(), 32u);
}

TEST(Message, UploadFrameDwarfsEliminationFrame) {
  UpdateUploadMsg u;
  u.update.assign(10000, 1.0f);
  const auto upload = encode(Message(u));
  const auto elim = encode(Message(EliminationMsg{}));
  EXPECT_GT(upload.size(), 100 * elim.size());
}

TEST(Message, ShutdownRoundTrip) {
  const auto frame = encode(Message(ShutdownMsg{}));
  EXPECT_TRUE(std::holds_alternative<ShutdownMsg>(decode(frame)));
  EXPECT_EQ(frame.size(), 1u);
}

TEST(Message, CorruptedFramesRejected) {
  // Unknown type byte.
  std::vector<std::byte> bad = {std::byte{0x7F}};
  EXPECT_THROW(decode(bad), std::runtime_error);
  // Truncated broadcast.
  BroadcastMsg b;
  b.global_params = {1.0f, 2.0f};
  auto frame = encode(Message(b));
  frame.resize(frame.size() - 4);
  EXPECT_THROW(decode(frame), std::runtime_error);
  // Trailing garbage.
  auto frame2 = encode(Message(ShutdownMsg{}));
  frame2.push_back(std::byte{0});
  EXPECT_THROW(decode(frame2), std::runtime_error);
}

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (the classic check value).
  const char* s = "123456789";
  std::vector<std::byte> data;
  for (const char* p = s; *p; ++p) data.push_back(std::byte(*p));
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32({}), 0u);
}

TEST(FrameSeal, RoundTrip) {
  auto frame = encode(Message(EliminationMsg{1, 3, 5, 0.4}));
  const std::size_t unsealed = frame.size();
  seal_frame(frame);
  EXPECT_EQ(frame.size(), unsealed + 4);
  const auto payload = open_frame(frame);
  EXPECT_EQ(payload.size(), unsealed);
  EXPECT_TRUE(std::holds_alternative<EliminationMsg>(decode(payload)));
}

TEST(FrameSeal, DetectsCorruption) {
  auto frame = encode(Message(EliminationMsg{1, 3, 5, 0.4}));
  seal_frame(frame);
  // Flip one payload bit.
  frame[4] ^= std::byte{0x01};
  EXPECT_THROW(open_frame(frame), std::runtime_error);
  // Flip a CRC bit instead.
  auto frame2 = encode(Message(ShutdownMsg{}));
  seal_frame(frame2);
  frame2.back() ^= std::byte{0xFF};
  EXPECT_THROW(open_frame(frame2), std::runtime_error);
  // Undersized frame.
  std::vector<std::byte> tiny = {std::byte{1}, std::byte{2}};
  EXPECT_THROW(open_frame(tiny), std::runtime_error);
}

TEST(FrameSeal, TryOpenFrameMatchesOpenFrame) {
  auto frame = encode(Message(EliminationMsg{2, 9, 1, 0.5}));
  seal_frame(frame);
  const auto ok = try_open_frame(frame);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(std::holds_alternative<EliminationMsg>(decode(*ok)));
  frame[0] ^= std::byte{0x80};
  EXPECT_FALSE(try_open_frame(frame).has_value());
}

TEST(FrameSeal, EverySingleBitFlipRejected) {
  // CRC-32 detects all single-bit errors, so flipping any one bit anywhere
  // in a sealed frame — payload or CRC — must make try_open_frame fail.
  // This is exactly the fault FaultyChannel's corrupt_prob injects.
  auto sealed = encode(Message(EliminationMsg{7, 11, 2, 0.9}));
  seal_frame(sealed);
  for (std::size_t pos = 0; pos < sealed.size(); ++pos) {
    for (unsigned bit = 0; bit < 8; ++bit) {
      auto flipped = sealed;
      flipped[pos] ^= static_cast<std::byte>(1u << bit);
      EXPECT_FALSE(try_open_frame(flipped).has_value())
          << "single-bit flip at byte " << pos << " bit " << bit
          << " was not detected";
    }
  }
}

TEST(FrameSeal, EveryTruncationIsRejected) {
  auto sealed = encode(Message(EliminationMsg{7, 11, 2, 0.9}));
  seal_frame(sealed);
  // Every strict prefix must be rejected: either too short to carry a CRC,
  // or carrying a CRC that no longer matches the shortened payload.
  for (std::size_t len = 0; len < sealed.size(); ++len) {
    const std::span<const std::byte> prefix(sealed.data(), len);
    EXPECT_FALSE(try_open_frame(prefix).has_value())
        << "truncation to " << len << " bytes was not detected";
  }
  EXPECT_TRUE(try_open_frame(sealed).has_value());
}

TEST(FrameSeal, DuplicatedTrailingCrcRejected) {
  // P‖C‖C: an extra copy of the CRC appended after a valid sealed frame.
  // The verifier must treat the first CRC as payload (and fail), never
  // resynchronize on an inner valid prefix.
  auto sealed = encode(Message(EliminationMsg{7, 11, 2, 0.9}));
  seal_frame(sealed);
  std::vector<std::byte> doubled = sealed;
  doubled.insert(doubled.end(), sealed.end() - 4, sealed.end());
  EXPECT_FALSE(try_open_frame(doubled).has_value());
  EXPECT_THROW(open_frame(doubled), std::runtime_error);
}

TEST(FrameSeal, EmptyFrameRejected) {
  EXPECT_THROW(open_frame({}), std::runtime_error);
  EXPECT_FALSE(try_open_frame({}).has_value());
}

TEST(FrameSeal, FourZeroBytesOpenToEmptyPayloadButDoNotDecode) {
  // crc32 of the empty payload is 0, so four zero bytes form a validly
  // sealed empty frame.  open_frame accepts it, but the message layer must
  // still reject the empty payload (no type byte).
  const std::vector<std::byte> zeros(4, std::byte{0});
  const auto payload = open_frame(zeros);
  EXPECT_TRUE(payload.empty());
  EXPECT_THROW(decode(payload), std::runtime_error);
}

TEST(Message, FrameTypeDispatch) {
  EXPECT_EQ(frame_type(Message(BroadcastMsg{})), FrameType::kBroadcast);
  EXPECT_EQ(frame_type(Message(UpdateUploadMsg{})), FrameType::kUpdateUpload);
  EXPECT_EQ(frame_type(Message(EliminationMsg{})), FrameType::kElimination);
  EXPECT_EQ(frame_type(Message(ShutdownMsg{})), FrameType::kShutdown);
}

}  // namespace
}  // namespace cmfl::net

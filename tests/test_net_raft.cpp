// Deterministic unit tests for the minimal Raft node (net/raft.h).
//
// RaftNode is purely message-driven, so a whole cluster can be simulated
// in-process: tick every node, shuttle outbox messages between inboxes, and
// assert on roles / terms / committed sequences.  No threads, no clocks —
// every test is exactly reproducible.
#include "net/raft.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cmfl::net {
namespace {

std::vector<std::byte> cmd(const std::string& s) {
  std::vector<std::byte> out;
  out.reserve(s.size());
  for (const char c : s) out.push_back(static_cast<std::byte>(c));
  return out;
}

std::string text(const std::vector<std::byte>& bytes) {
  std::string out;
  out.reserve(bytes.size());
  for (const std::byte b : bytes) out.push_back(static_cast<char>(b));
  return out;
}

/// An in-process cluster: nodes plus a synchronous message fabric.
class Cluster {
 public:
  explicit Cluster(std::uint32_t n, std::uint64_t seed = 7,
                   bool pre_vote = false) {
    nodes_.reserve(n);
    committed_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      RaftConfig c;
      c.id = i;
      c.cluster_size = n;
      c.seed = seed;
      c.pre_vote = pre_vote;
      nodes_.emplace_back(c);
    }
  }

  RaftNode& node(std::uint32_t i) { return nodes_[i]; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(nodes_.size()); }

  /// Isolates a node: the fabric drops every message to and from it.
  void isolate(std::uint32_t i) { isolated_.insert(i); }
  void heal(std::uint32_t i) { isolated_.erase(i); }

  /// Delivers messages until no node has anything left to send.
  void deliver() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::uint32_t i = 0; i < size(); ++i) {
        for (auto& send : nodes_[i].take_outbox()) {
          collect(i);
          if (isolated_.count(i) != 0 || isolated_.count(send.to) != 0) {
            continue;
          }
          nodes_[send.to].step(send.msg);
          progress = true;
        }
      }
    }
    for (std::uint32_t i = 0; i < size(); ++i) collect(i);
  }

  /// One round: every node ticks once, then the fabric drains.
  void round() {
    for (auto& n : nodes_) n.tick();
    deliver();
  }

  /// Enough rounds for a heartbeat (and the commit index it carries) to
  /// reach every connected follower.
  void settle() {
    for (int i = 0; i < 4; ++i) round();
  }

  /// Ticks until exactly one connected node is leader; returns its id.
  std::uint32_t elect(int max_rounds = 500) {
    for (int r = 0; r < max_rounds; ++r) {
      round();
      const int l = sole_leader();
      if (l >= 0) return static_cast<std::uint32_t>(l);
    }
    ADD_FAILURE() << "no leader elected after " << max_rounds << " rounds";
    return 0;
  }

  int sole_leader() const {
    int leader = -1;
    for (std::uint32_t i = 0; i < size(); ++i) {
      if (isolated_.count(i) != 0) continue;
      if (nodes_[i].role() == RaftNode::Role::kLeader) {
        if (leader >= 0) return -1;  // split — keep going
        leader = static_cast<int>(i);
      }
    }
    return leader;
  }

  /// Commands each node has applied, in commit order (no-ops excluded).
  const std::vector<std::string>& committed(std::uint32_t i) {
    collect(i);
    return committed_[i];
  }

 private:
  void collect(std::uint32_t i) {
    for (auto& c : nodes_[i].take_committed()) {
      committed_[i].push_back(text(c.command));
    }
  }

  std::vector<RaftNode> nodes_;
  std::vector<std::vector<std::string>> committed_;
  std::set<std::uint32_t> isolated_;
};

TEST(RaftConfig, Validation) {
  RaftConfig c;
  EXPECT_NO_THROW(c.validate());
  c.id = 3;  // >= cluster_size
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = RaftConfig{};
  c.election_timeout_min_ticks = 25;  // min > max
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = RaftConfig{};
  c.heartbeat_ticks = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = RaftConfig{};
  c.election_timeout_min_ticks = 2;  // must exceed heartbeat cadence
  c.heartbeat_ticks = 2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(RaftWire, MessagesRoundTrip) {
  const RaftMessage msgs[] = {
      RequestVoteMsg{5, 2, 17, 4},
      VoteReplyMsg{5, 1, 1},
      AppendEntriesMsg{7, 0, 3, 6, 2, {RaftEntry{7, cmd("x")}, RaftEntry{7, {}}}},
      AppendReplyMsg{7, 2, 0, 9},
      InstallSnapshotMsg{8, 1, 42, 7, cmd("snapshot-bytes")},
      SnapshotReplyMsg{8, 2, 42},
      PreVoteMsg{9, 0, 11, 8},
      PreVoteReplyMsg{9, 2, 1},
  };
  for (const RaftMessage& m : msgs) {
    auto frame = encode_raft(m);
    ASSERT_TRUE(is_raft_frame(frame));
    const RaftMessage back = decode_raft(frame);
    EXPECT_EQ(back.index(), m.index());
    EXPECT_EQ(raft_sender(back), raft_sender(m));
    EXPECT_EQ(encode_raft(back), frame);  // canonical encoding
  }
  // An FL data frame must never be mistaken for a Raft frame.
  const std::vector<std::byte> fl_frame = {std::byte{1}, std::byte{0}};
  EXPECT_FALSE(is_raft_frame(fl_frame));
  EXPECT_THROW(decode_raft(fl_frame), std::runtime_error);
}

TEST(RaftNode, SingleNodeClusterLeadsAndCommitsAlone) {
  RaftConfig c;
  c.cluster_size = 1;
  RaftNode n(c);
  for (int i = 0; i < 50 && n.role() != RaftNode::Role::kLeader; ++i) {
    n.tick();
  }
  ASSERT_EQ(n.role(), RaftNode::Role::kLeader);
  EXPECT_TRUE(n.propose(cmd("a")));
  const auto committed = n.take_committed();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(text(committed[0].command), "a");
}

TEST(RaftNode, ThreeNodesElectExactlyOneLeader) {
  Cluster c(3);
  const std::uint32_t leader = c.elect();
  EXPECT_EQ(c.node(leader).role(), RaftNode::Role::kLeader);
  for (std::uint32_t i = 0; i < 3; ++i) {
    if (i == leader) continue;
    EXPECT_EQ(c.node(i).role(), RaftNode::Role::kFollower);
    EXPECT_EQ(c.node(i).term(), c.node(leader).term());
    EXPECT_EQ(c.node(i).leader_hint(), leader);
  }
  EXPECT_EQ(c.node(leader).counters().elections_won, 1u);
  EXPECT_FALSE(c.node((leader + 1) % 3).propose(cmd("nope")));
}

TEST(RaftNode, ReplicatesAndCommitsInOrderOnEveryNode) {
  Cluster c(3);
  const std::uint32_t leader = c.elect();
  for (const char* s : {"a", "b", "c"}) {
    EXPECT_TRUE(c.node(leader).propose(cmd(s)));
    c.deliver();
  }
  c.settle();  // heartbeats spread the commit index to followers
  const std::vector<std::string> want = {"a", "b", "c"};
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.committed(i), want) << "node " << i;
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    if (i == leader) continue;
    EXPECT_GT(c.node(i).counters().entries_appended, 0u);
    EXPECT_EQ(c.node(leader).peer_match_index(i),
              c.node(leader).last_log_index());
  }
}

TEST(RaftNode, SurvivorsElectNewLeaderAfterLeaderFailure) {
  Cluster c(3);
  const std::uint32_t first = c.elect();
  EXPECT_TRUE(c.node(first).propose(cmd("a")));
  c.deliver();
  const std::uint64_t first_term = c.node(first).term();

  c.isolate(first);
  const std::uint32_t second = c.elect();
  EXPECT_NE(second, first);
  EXPECT_GT(c.node(second).term(), first_term);

  // The new leader still commits — 2 of 3 is a majority — and the committed
  // prefix from the old leadership survives.
  EXPECT_TRUE(c.node(second).propose(cmd("b")));
  c.deliver();
  c.settle();
  const std::vector<std::string> want = {"a", "b"};
  for (const std::uint32_t i : {second, 3 - second - first}) {
    EXPECT_EQ(c.committed(i), want) << "node " << i;
  }
}

TEST(RaftNode, DeposedLeaderDiscardsItsUncommittedEntries) {
  Cluster c(3);
  const std::uint32_t old_leader = c.elect();
  EXPECT_TRUE(c.node(old_leader).propose(cmd("committed")));
  c.deliver();

  // The old leader is cut off and proposes into the void.
  c.isolate(old_leader);
  EXPECT_TRUE(c.node(old_leader).propose(cmd("lost-1")));
  EXPECT_TRUE(c.node(old_leader).propose(cmd("lost-2")));

  const std::uint32_t new_leader = c.elect();
  EXPECT_TRUE(c.node(new_leader).propose(cmd("kept")));
  c.deliver();
  c.settle();

  // Heal: the old leader must step down to follower and converge on the
  // new leader's log — its isolated proposals vanish.
  c.heal(old_leader);
  for (int r = 0; r < 100; ++r) {
    c.round();
    if (c.node(old_leader).role() == RaftNode::Role::kFollower &&
        c.committed(old_leader).size() == 2) {
      break;
    }
  }
  EXPECT_EQ(c.node(old_leader).role(), RaftNode::Role::kFollower);
  const std::vector<std::string> want = {"committed", "kept"};
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(c.committed(i), want) << "node " << i;
  }
}

TEST(RaftNode, LaggingFollowerIsCaughtUpBySnapshotAfterCompaction) {
  Cluster c(3);
  const std::uint32_t leader = c.elect();
  EXPECT_TRUE(c.node(leader).propose(cmd("a")));
  c.deliver();

  const std::uint32_t lagger =
      (leader + 1) % 3 == 0 ? (leader + 2) % 3 : (leader + 1) % 3;
  const std::uint32_t lagger2 = 3 - leader - lagger;
  (void)lagger2;
  c.isolate(lagger);
  EXPECT_TRUE(c.node(leader).propose(cmd("b")));
  c.deliver();
  EXPECT_TRUE(c.node(leader).propose(cmd("c")));
  c.deliver();

  // Compact the leader past everything the lagging follower holds; log
  // entries before the snapshot horizon are gone for good.
  c.committed(leader);  // drain
  c.node(leader).compact(c.node(leader).commit_index(), cmd("SNAPSHOT"));

  c.heal(lagger);
  std::optional<RaftNode::InstalledSnapshot> snap;
  for (int r = 0; r < 200 && !snap; ++r) {
    c.round();
    snap = c.node(lagger).take_installed_snapshot();
  }
  ASSERT_TRUE(snap.has_value()) << "snapshot never installed";
  EXPECT_EQ(text(snap->data), "SNAPSHOT");
  EXPECT_EQ(snap->last_index, c.node(leader).commit_index());
  EXPECT_GE(c.node(lagger).counters().snapshots_installed, 1u);

  // Entries after the snapshot flow as normal appends again.
  EXPECT_TRUE(c.node(leader).propose(cmd("d")));
  c.deliver();
  c.settle();
  EXPECT_EQ(c.committed(lagger), (std::vector<std::string>{"d"}));
}

TEST(RaftNode, CompactRejectsUnappliedIndex) {
  RaftConfig c;
  c.cluster_size = 1;
  RaftNode n(c);
  for (int i = 0; i < 50 && n.role() != RaftNode::Role::kLeader; ++i) {
    n.tick();
  }
  ASSERT_EQ(n.role(), RaftNode::Role::kLeader);
  EXPECT_THROW(n.compact(n.last_log_index() + 1, cmd("s")),
               std::invalid_argument);
}

TEST(RaftNode, SeededElectionsAreReproducible) {
  // Identical seed + identical tick/delivery schedule => identical leader,
  // identical term.  This is the determinism the replicated control plane's
  // documentation promises for the timeout *sequences*.
  auto run = [](std::uint64_t seed) {
    Cluster c(3, seed);
    const std::uint32_t leader = c.elect();
    return std::make_pair(leader, c.node(leader).term());
  };
  for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    EXPECT_EQ(run(seed), run(seed)) << "seed " << seed;
  }
}

std::uint64_t total_elections(Cluster& c) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < c.size(); ++i) {
    total += c.node(i).counters().elections_won;
  }
  return total;
}

TEST(RaftPreVote, PartitionAndHealCausesZeroExtraElections) {
  // The §9.6 scenario pre-vote exists for: a partitioned follower times out
  // over and over, but polling at term + 1 (instead of incrementing) means
  // its term never inflates — so when the partition heals, the stable
  // leader keeps leading and not a single extra election is held.
  Cluster c(3, /*seed=*/7, /*pre_vote=*/true);
  const std::uint32_t leader = c.elect();
  EXPECT_TRUE(c.node(leader).propose(cmd("a")));
  c.deliver();
  c.settle();
  const std::uint64_t stable_term = c.node(leader).term();
  const std::uint64_t elections_before = total_elections(c);

  const std::uint32_t cut = (leader + 1) % 3;
  c.isolate(cut);
  for (int r = 0; r < 200; ++r) c.round();
  EXPECT_EQ(c.node(cut).role(), RaftNode::Role::kFollower);
  EXPECT_EQ(c.node(cut).term(), stable_term) << "pre-vote must not inflate";

  c.heal(cut);
  for (int r = 0; r < 50; ++r) c.round();
  EXPECT_EQ(c.node(leader).role(), RaftNode::Role::kLeader);
  EXPECT_EQ(c.node(leader).term(), stable_term);
  EXPECT_EQ(total_elections(c), elections_before);
}

TEST(RaftPreVote, WithoutPreVoteHealedFollowerDeposesLeader) {
  // The control experiment: same schedule without pre-vote.  The cut
  // follower inflates its term with every timeout, and healing it forces
  // the stable leader out of office — the disruption pre-vote prevents.
  Cluster c(3, /*seed=*/7, /*pre_vote=*/false);
  const std::uint32_t leader = c.elect();
  EXPECT_TRUE(c.node(leader).propose(cmd("a")));
  c.deliver();
  c.settle();
  const std::uint64_t stable_term = c.node(leader).term();

  const std::uint32_t cut = (leader + 1) % 3;
  c.isolate(cut);
  for (int r = 0; r < 200; ++r) c.round();
  EXPECT_GT(c.node(cut).term(), stable_term);

  c.heal(cut);
  for (int r = 0; r < 200; ++r) c.round();
  EXPECT_GT(c.node(0).term(), stable_term) << "term inflation must spread";
}

TEST(RaftPreVote, StillElectsWhenLeaderActuallyDies) {
  // Pre-vote must not get in the way of *legitimate* elections: kill the
  // leader and the survivors still pass the poll and elect a successor.
  Cluster c(3, /*seed=*/7, /*pre_vote=*/true);
  const std::uint32_t first = c.elect();
  EXPECT_TRUE(c.node(first).propose(cmd("a")));
  c.deliver();
  c.isolate(first);
  const std::uint32_t second = c.elect();
  EXPECT_NE(second, first);
  EXPECT_TRUE(c.node(second).propose(cmd("b")));
  c.deliver();
  c.settle();
  const std::uint32_t third = 3 - first - second;
  EXPECT_EQ(c.committed(third), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace cmfl::net

// Crash-consistent checkpoint/resume: codec round trips, corruption
// rejection, and the central invariant — kill a run at iteration k, rebuild
// everything from the checkpoint file, and the resumed trajectory is
// bit-identical to the uninterrupted one.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/filter.h"
#include "fl/checkpoint.h"
#include "fl/convex_testbed.h"
#include "fl/simulation.h"
#include "fl/workloads.h"

namespace cmfl::fl {
namespace {

TrainerCheckpoint sample_checkpoint() {
  TrainerCheckpoint ck;
  ck.iteration = 42;
  ck.global_params = {1.5f, -2.25f, 0.0f};
  ck.estimator_estimate = {0.125f, 0.5f, -1.0f};
  ck.estimator_observed = true;
  ck.prev_global_update = {0.25f, 0.0f, -0.75f};
  ck.cumulative_rounds = 321;
  ck.uploaded_bytes = 98765;
  IterationRecord evaluated;
  evaluated.iteration = 41;
  evaluated.uploads = 7;
  evaluated.participants = 9;
  evaluated.rejected = 2;
  evaluated.cumulative_rounds = 300;
  evaluated.cumulative_upload_bytes = 77777;
  evaluated.mean_score = 0.625;
  evaluated.mean_train_loss = 1.75;
  evaluated.delta_update = 0.03125;
  evaluated.staleness_mean = 1.25;
  evaluated.staleness_max = 3;
  evaluated.accuracy = 0.875;
  evaluated.loss = 0.5;
  IterationRecord unevaluated;  // NaN accuracy/loss must survive the codec
  unevaluated.iteration = 42;
  unevaluated.uploads = 8;
  ck.history = {evaluated, unevaluated};
  ck.eliminations_per_client = {3, 0, 12};
  ck.uploads_per_client = {39, 42, 30};
  ck.server_rng = {1, 2, 3, 4};
  ck.validation.rejected_nonfinite = 5;
  ck.validation.rejected_norm = 2;
  ck.validation.discarded_quarantined = 1;
  ck.validation.strikes = {0, 3, 1};
  ck.validation.quarantined = {0, 1, 0};
  ck.client_state = {{10, 20, 30, 40}, {}, {50, 60, 70, 80, 90}};
  ck.compressor_state = {{}, {11, 12, 13, 14}, {}};
  ck.meters.uplink_bytes = 1000;
  ck.meters.uplink_messages = 10;
  ck.meters.uplink_retransmitted = 100;
  ck.meters.downlink_bytes = 2000;
  ck.meters.downlink_messages = 20;
  ck.meters.downlink_retransmitted = 0;
  ck.meters.upload_messages = 8;
  ck.meters.elimination_messages = 2;
  ck.meters.simulated_transfer_seconds = 12.5;
  ck.meters.footprint = {{5, 0.5, 500}, {10, 0.75, 900}};
  ck.sched.engaged = 1;
  ck.sched.version = 17;
  ck.sched.virtual_now = 123.0625;
  ck.sched.invite_counter = 256;
  ck.sched.engine_rng = {9, 8, 7, 6};
  SchedInFlightReport upload;
  upload.device = 41;
  upload.version = 15;
  upload.arrival = 124.5;
  upload.kind = 1;
  upload.score = 0.375;
  upload.train_loss = 2.25;
  upload.local_samples = 6;
  upload.wire_bytes = 321;
  upload.update = {0.5f, -0.25f, 1.0f};
  SchedInFlightReport elimination;
  elimination.device = 99;
  elimination.version = 16;
  elimination.arrival = 130.0;
  elimination.kind = 0;
  elimination.score = 0.125;
  ck.sched.in_flight = {upload, elimination};
  ck.sched.population_state = {2, 41, 4, 1, 2, 3, 4, 99, 0};
  ck.sched.invited = 400;
  ck.sched.reported = 350;
  ck.sched.unavailable_invited = 30;
  ck.sched.mid_round_dropouts = 20;
  ck.sched.discarded_stragglers = 15;
  ck.sched.stale_discarded = 5;
  ck.sched.codec_devices = {41, 99};
  ck.sched.codec_state = {{21, 22, 23}, {}};
  return ck;
}

void expect_checkpoints_equal(const TrainerCheckpoint& a,
                              const TrainerCheckpoint& b) {
  EXPECT_EQ(a.iteration, b.iteration);
  EXPECT_EQ(a.global_params, b.global_params);
  EXPECT_EQ(a.estimator_estimate, b.estimator_estimate);
  EXPECT_EQ(a.estimator_observed, b.estimator_observed);
  EXPECT_EQ(a.prev_global_update, b.prev_global_update);
  EXPECT_EQ(a.cumulative_rounds, b.cumulative_rounds);
  EXPECT_EQ(a.uploaded_bytes, b.uploaded_bytes);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(a.history[i], b.history[i])) << "record " << i;
  }
  EXPECT_EQ(a.eliminations_per_client, b.eliminations_per_client);
  EXPECT_EQ(a.uploads_per_client, b.uploads_per_client);
  EXPECT_EQ(a.server_rng, b.server_rng);
  EXPECT_EQ(a.validation, b.validation);
  EXPECT_EQ(a.client_state, b.client_state);
  EXPECT_EQ(a.compressor_state, b.compressor_state);
  EXPECT_EQ(a.meters, b.meters);
  EXPECT_EQ(a.sched, b.sched);
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  const TrainerCheckpoint ck = sample_checkpoint();
  expect_checkpoints_equal(decode_checkpoint(encode_checkpoint(ck)), ck);
}

TEST(Checkpoint, DecodeRejectsTruncationAndTrailingBytes) {
  const std::vector<std::byte> payload =
      encode_checkpoint(sample_checkpoint());
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{7}, payload.size() / 2,
        payload.size() - 1}) {
    EXPECT_THROW(
        decode_checkpoint(std::span(payload).first(cut)),
        std::runtime_error)
        << "cut " << cut;
  }
  std::vector<std::byte> padded = payload;
  padded.push_back(std::byte{0});
  EXPECT_THROW(decode_checkpoint(padded), std::runtime_error);
}

TEST(Checkpoint, FileRoundTripAndCorruptionDetection) {
  const std::string path = ::testing::TempDir() + "ck_roundtrip.bin";
  std::remove(path.c_str());
  const TrainerCheckpoint ck = sample_checkpoint();
  save_checkpoint_file(path, ck);
  expect_checkpoints_equal(load_checkpoint_file(path), ck);

  // One flipped payload bit -> CRC rejection.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(20);
  char c;
  f.get(c);
  f.seekp(20);
  f.put(static_cast<char>(c ^ 0x01));
  f.close();
  EXPECT_THROW(load_checkpoint_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, BitwiseEqualTreatsNaNFieldsAsEqual) {
  IterationRecord a;
  IterationRecord b;
  EXPECT_TRUE(bitwise_equal(a, b));  // both accuracy/loss NaN
  b.accuracy = 0.5;
  EXPECT_FALSE(bitwise_equal(a, b));
  b.accuracy = std::numeric_limits<double>::quiet_NaN();
  b.uploads = 1;
  EXPECT_FALSE(bitwise_equal(a, b));
}

// --- The resume invariant ---

void expect_bit_identical(const SimulationResult& resumed,
                          const SimulationResult& uninterrupted) {
  EXPECT_EQ(resumed.final_params, uninterrupted.final_params);
  ASSERT_EQ(resumed.history.size(), uninterrupted.history.size());
  for (std::size_t i = 0; i < uninterrupted.history.size(); ++i) {
    EXPECT_TRUE(
        bitwise_equal(resumed.history[i], uninterrupted.history[i]))
        << "iteration record " << i;
  }
  EXPECT_EQ(resumed.eliminations_per_client,
            uninterrupted.eliminations_per_client);
  EXPECT_EQ(resumed.uploaded_bytes, uninterrupted.uploaded_bytes);
  EXPECT_EQ(resumed.total_rounds, uninterrupted.total_rounds);
  EXPECT_EQ(resumed.validation, uninterrupted.validation);
  EXPECT_EQ(resumed.final_accuracy, uninterrupted.final_accuracy);
}

DigitsMlpSpec mlp_spec() {
  DigitsMlpSpec spec;
  spec.clients = 8;
  spec.train_samples = 240;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 11;
  return spec;
}

TEST(CheckpointResume, MlpRunResumesBitIdentically) {
  const std::string path = ::testing::TempDir() + "ck_mlp.bin";
  std::remove(path.c_str());

  SimulationOptions opt;
  opt.local_epochs = 2;
  opt.batch_size = 5;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 12;
  opt.eval_every = 2;
  opt.checkpoint_every = 6;
  opt.checkpoint_path = path;

  // Uninterrupted reference run (checkpoint writes must not perturb it).
  Workload w_ref = make_digits_mlp_workload(mlp_spec());
  FederatedSimulation ref(
      std::move(w_ref.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w_ref.evaluator, opt);
  const SimulationResult uninterrupted = ref.run();

  // "Crash" at iteration 6: run only that far, keep the checkpoint file.
  {
    SimulationOptions first_half = opt;
    first_half.max_iterations = 6;
    Workload w = make_digits_mlp_workload(mlp_spec());
    FederatedSimulation sim(
        std::move(w.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w.evaluator, first_half);
    sim.run();
  }  // the trainer object is destroyed here

  // Rebuild the workload from its spec and resume from the file.
  const TrainerCheckpoint ck = load_checkpoint_file(path);
  EXPECT_EQ(ck.iteration, 6u);
  Workload w2 = make_digits_mlp_workload(mlp_spec());
  FederatedSimulation resumed_sim(
      std::move(w2.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w2.evaluator, opt);
  const SimulationResult resumed = resumed_sim.resume(ck);

  expect_bit_identical(resumed, uninterrupted);
  std::remove(path.c_str());
}

TEST(CheckpointResume, StochasticOptionsResumeBitIdentically) {
  // The hard case: partial participation consumes the server RNG, lossy
  // subsampled coding consumes per-client codec streams, and the
  // convex clients consume per-client noise streams.  All of it must be
  // captured and restored.
  const std::string path = ::testing::TempDir() + "ck_convex.bin";
  std::remove(path.c_str());

  ConvexTestbedSpec spec;
  spec.clients = 10;
  spec.dim = 12;
  spec.gradient_noise = 0.1;
  spec.local_steps = 3;
  spec.seed = 23;

  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 1;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 9;
  // Must divide the checkpoint iteration: the interrupted run's forced
  // final-iteration eval then coincides with a scheduled one, keeping the
  // checkpointed history identical to the uninterrupted run's.
  opt.eval_every = 2;
  opt.participation = 0.6;
  opt.codec.spec = "subsample:0.5";
  opt.parallel = false;
  opt.checkpoint_every = 4;
  opt.checkpoint_path = path;

  ConvexWorkload w_ref = make_convex_workload(spec);
  FederatedSimulation ref(std::move(w_ref.clients),
                          std::make_unique<core::AcceptAllFilter>(),
                          w_ref.evaluator, opt);
  const SimulationResult uninterrupted = ref.run();

  {
    SimulationOptions first_half = opt;
    first_half.max_iterations = 4;
    ConvexWorkload w = make_convex_workload(spec);
    FederatedSimulation sim(std::move(w.clients),
                            std::make_unique<core::AcceptAllFilter>(),
                            w.evaluator, first_half);
    sim.run();
  }

  const TrainerCheckpoint ck = load_checkpoint_file(path);
  EXPECT_EQ(ck.iteration, 4u);
  ConvexWorkload w2 = make_convex_workload(spec);
  FederatedSimulation resumed_sim(std::move(w2.clients),
                                  std::make_unique<core::AcceptAllFilter>(),
                                  w2.evaluator, opt);
  const SimulationResult resumed = resumed_sim.resume(ck);

  expect_bit_identical(resumed, uninterrupted);
  std::remove(path.c_str());
}

TEST(CheckpointResume, MismatchedCheckpointIsRejected) {
  ConvexTestbedSpec spec;
  spec.clients = 4;
  spec.dim = 8;
  ConvexWorkload w = make_convex_workload(spec);
  SimulationOptions opt;
  opt.max_iterations = 4;
  FederatedSimulation sim(std::move(w.clients),
                          std::make_unique<core::AcceptAllFilter>(),
                          w.evaluator, opt);

  TrainerCheckpoint wrong_dim = sample_checkpoint();  // dim 3, 3 clients
  EXPECT_THROW(sim.resume(wrong_dim), std::invalid_argument);

  TrainerCheckpoint wrong_clients;
  wrong_clients.iteration = 1;
  wrong_clients.global_params.assign(8, 0.0f);
  wrong_clients.estimator_estimate.assign(8, 0.0f);
  wrong_clients.server_rng = {1, 2, 3, 4};
  wrong_clients.client_state.resize(3);      // 3 states for 4 clients
  wrong_clients.compressor_state.resize(3);
  wrong_clients.eliminations_per_client.resize(3);
  wrong_clients.validation.strikes.resize(3);
  wrong_clients.validation.quarantined.resize(3);
  EXPECT_THROW(sim.resume(wrong_clients), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::fl

// fl::ShardedAggregator: the bit-identity contract of the sharded
// parameter-server pipeline (DESIGN.md §17) — partition alignment, the
// index-order collect barrier, exact scalar-pass parity with the serial
// helpers, range-fan-out aggregation equal to aggregate_updates for every
// rule at every shard count, and checkpointable per-shard counters.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

#include "fl/robust_agg.h"
#include "fl/shard.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace cmfl::fl {
namespace {

std::vector<std::vector<float>> make_updates(std::size_t count,
                                             std::size_t dim,
                                             std::uint64_t seed = 77) {
  std::vector<std::vector<float>> updates(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng rng(seed + i);
    updates[i].resize(dim);
    for (auto& x : updates[i]) x = rng.uniform_f(-1.0f, 1.0f);
  }
  return updates;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& updates) {
  return {updates.begin(), updates.end()};
}

ShardOptions shard_opts(std::size_t s) {
  ShardOptions so;
  so.shards = s;
  return so;
}

TEST(ShardPartition, CoversDimWithAlignedBoundaries) {
  for (const std::size_t dim : {1u, 63u, 64u, 65u, 100u, 1000u, 4113u}) {
    for (const std::size_t shards : {1u, 2u, 4u, 8u, 13u}) {
      const auto ranges = shard_partition(dim, shards);
      ASSERT_EQ(ranges.size(), shards);
      EXPECT_EQ(ranges.front().lo, 0u);
      EXPECT_EQ(ranges.back().hi, dim);
      std::size_t min_size = std::numeric_limits<std::size_t>::max();
      std::size_t max_size = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        EXPECT_LE(ranges[s].lo, ranges[s].hi);
        if (s > 0) {
          EXPECT_EQ(ranges[s].lo, ranges[s - 1].hi);
          // Interior boundaries sit on SignPack word boundaries.
          EXPECT_EQ(ranges[s].lo % 64, 0u)
              << "dim " << dim << " shards " << shards << " s " << s;
        }
        min_size = std::min(min_size, ranges[s].size());
        max_size = std::max(max_size, ranges[s].size());
      }
      // Near-even deal: each ideal cut rounds down by < 64, so sizes differ
      // by at most two rounding errors (empty trailing shards excepted when
      // dim < 64 * shards).
      if (dim >= 64 * shards) EXPECT_LE(max_size - min_size, 128u);
    }
  }
  EXPECT_THROW(shard_partition(128, 0), std::invalid_argument);
}

TEST(ShardedAggregator, ScalarPassMatchesSerialHelpers) {
  const std::size_t dim = 777;
  const auto updates = make_updates(9, dim);
  tensor::SignPack estimate;
  {
    util::Rng rng(5);
    std::vector<float> est(dim);
    for (auto& x : est) x = rng.uniform_f(-1.0f, 1.0f);
    estimate.assign(est);
  }

  for (const std::size_t s : {1u, 2u, 4u, 8u}) {
    ShardedAggregator agg(dim, shard_opts(s));
    agg.begin_batch(updates.size());
    // Submit in reverse order: collect must still return index order.
    for (std::size_t i = updates.size(); i-- > 0;) {
      agg.submit_update(i, updates[i], &estimate, 100 + i);
    }
    const auto results = agg.collect(updates.size());
    ASSERT_EQ(results.size(), updates.size());
    for (std::size_t i = 0; i < updates.size(); ++i) {
      EXPECT_FALSE(results[i].error);
      EXPECT_EQ(results[i].scalars.finite, update_all_finite(updates[i]));
      // Bit-exact: the shard worker runs the same serial reduction.
      EXPECT_EQ(results[i].scalars.norm, update_l2_norm(updates[i]));
      EXPECT_EQ(results[i].sign_matches,
                tensor::count_sign_matches(updates[i], estimate));
    }
  }
}

TEST(ShardedAggregator, ScalarPassFlagsNonFiniteUploads) {
  const std::size_t dim = 256;
  auto updates = make_updates(4, dim);
  updates[2][100] = std::numeric_limits<float>::quiet_NaN();

  ShardedAggregator agg(dim, shard_opts(2));
  agg.begin_batch(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    agg.submit_update(i, updates[i], nullptr, 0);
  }
  const auto results = agg.collect(updates.size());
  EXPECT_TRUE(results[0].scalars.finite);
  EXPECT_FALSE(results[2].scalars.finite);
}

TEST(ShardedAggregator, JobErrorsAreCapturedPerUpload) {
  ShardedAggregator agg(128, shard_opts(4));
  agg.begin_batch(3);
  agg.submit(0, 0, [] {
    ShardedAggregator::UploadResult r;
    r.scalars.norm = 1.0;
    return r;
  });
  agg.submit(1, 0, []() -> ShardedAggregator::UploadResult {
    throw std::runtime_error("decode failed");
  });
  agg.submit(2, 0, [] {
    ShardedAggregator::UploadResult r;
    r.scalars.norm = 3.0;
    return r;
  });
  const auto results = agg.collect(3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].error);
  EXPECT_EQ(results[0].scalars.norm, 1.0);
  ASSERT_TRUE(results[1].error);
  EXPECT_THROW(std::rethrow_exception(results[1].error), std::runtime_error);
  EXPECT_FALSE(results[2].error);
  EXPECT_EQ(results[2].scalars.norm, 3.0);
}

TEST(ShardedAggregator, AggregateBitIdenticalToSerialForEveryRule) {
  // The acceptance criterion: at S in {1, 2, 4, 8} every rule's sharded
  // output equals the single-master aggregate_updates byte-for-byte, on
  // dims that do and do not divide into 64-float blocks.
  const std::size_t count = 7;
  RobustAggOptions ropt;
  ropt.trim_fraction = 0.2;
  for (const std::size_t dim : {64u, 100u, 1000u, 4113u}) {
    const auto updates = make_updates(count, dim);
    const auto views = views_of(updates);
    std::vector<float> weights(count);
    for (std::size_t i = 0; i < count; ++i) {
      weights[i] = static_cast<float>(i + 1);
    }
    const float wsum = std::accumulate(weights.begin(), weights.end(), 0.0f);
    for (auto& w : weights) w /= wsum;
    std::vector<double> norms(count);
    for (std::size_t i = 0; i < count; ++i) {
      norms[i] = update_l2_norm(updates[i]);
    }

    for (const Aggregation rule :
         {Aggregation::kUniformMean, Aggregation::kSampleWeighted,
          Aggregation::kMedian, Aggregation::kTrimmedMean,
          Aggregation::kNormClippedMean}) {
      std::vector<float> serial(dim);
      aggregate_updates(rule, views, weights, ropt, serial);
      for (const std::size_t s : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE("dim " + std::to_string(dim) + " rule " +
                     aggregation_name(rule) + " shards " + std::to_string(s));
        ShardedAggregator agg(dim, shard_opts(s));
        std::vector<float> sharded(dim);
        agg.aggregate(rule, views, weights, ropt,
                      rule == Aggregation::kNormClippedMean
                          ? std::span<const double>(norms)
                          : std::span<const double>(),
                      sharded);
        EXPECT_EQ(sharded, serial);
      }
    }
  }
}

TEST(ShardedAggregator, CountSignMatchesEqualsFullVectorScan) {
  const std::size_t dim = 4113;  // not a multiple of 64
  const auto updates = make_updates(1, dim);
  util::Rng rng(9);
  std::vector<float> est(dim);
  for (auto& x : est) x = rng.uniform_f(-1.0f, 1.0f);
  tensor::SignPack estimate(est);

  const std::size_t expected = tensor::count_sign_matches(updates[0], estimate);
  for (const std::size_t s : {1u, 2u, 4u, 8u}) {
    ShardedAggregator agg(dim, shard_opts(s));
    EXPECT_EQ(agg.count_sign_matches(updates[0], estimate), expected);
  }
}

TEST(ShardedAggregator, StatsAccumulateDeterministicallyAndRoundTrip) {
  const std::size_t dim = 512;
  const auto updates = make_updates(6, dim);
  ShardedAggregator agg(dim, shard_opts(3));
  agg.begin_batch(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    agg.submit_update(i, updates[i], nullptr, 10 * (i + 1));
  }
  agg.collect(updates.size());

  const auto stats = agg.stats();
  ASSERT_EQ(stats.size(), 3u);
  // index-mod-S routing: shard 0 got uploads {0, 3}, shard 1 {1, 4}, ...
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(stats[s].uploads, 2u);
    EXPECT_EQ(stats[s].bytes, 10u * (s + 1) + 10u * (s + 4));
  }

  const auto words = agg.stats_words();
  ASSERT_EQ(words.size(), 9u);
  ShardedAggregator fresh(dim, shard_opts(3));
  fresh.restore_stats_words(words);
  EXPECT_EQ(fresh.stats_words(), words);
  EXPECT_EQ(fresh.stats(), stats);

  // Word count must be 3 * shards.
  ShardedAggregator other(dim, shard_opts(2));
  EXPECT_THROW(other.restore_stats_words(words), std::invalid_argument);
}

TEST(ShardedAggregator, RejectsZeroShards) {
  EXPECT_THROW(ShardedAggregator(128, shard_opts(0)), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::fl

// sched::RoundEngine: sync parity with FederatedSimulation, over-selection
// round semantics, buffered-async aggregation, and the kill-and-resume
// bit-identity invariant in both production round modes.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/filter.h"
#include "fl/checkpoint.h"
#include "fl/convex_testbed.h"
#include "fl/simulation.h"
#include "sched/population.h"
#include "sched/round_engine.h"

namespace cmfl::sched {
namespace {

fl::ConvexTestbedSpec testbed_spec(std::size_t clients) {
  fl::ConvexTestbedSpec spec;
  spec.clients = clients;
  spec.dim = 8;
  spec.local_steps = 3;
  spec.gradient_noise = 0.1;
  spec.seed = 23;
  return spec;
}

/// Deterministic factory producing exactly the clients
/// make_convex_workload builds (same centers, same RNG streams), so the
/// engine and the simulation train identical devices.
ClientFactory factory_for(const fl::ConvexTestbedSpec& spec,
                          std::shared_ptr<fl::ConvexTestbed> testbed) {
  return [spec, testbed](std::uint64_t k) {
    return std::make_unique<fl::ConvexClient>(
        testbed->centers()[k], spec.local_steps, spec.gradient_noise,
        util::Rng(spec.seed ^ 0xFEEDFACEULL).split(k),
        static_cast<float>(spec.start_offset));
  };
}

fl::GlobalEvaluator evaluator_for(std::shared_ptr<fl::ConvexTestbed> testbed) {
  return [testbed](std::span<const float> x) {
    nn::EvalResult eval;
    eval.loss = testbed->global_loss(x);
    eval.accuracy =
        1.0 / (1.0 + std::fabs(eval.loss - testbed->optimum_loss()));
    eval.samples = testbed->centers().size();
    return eval;
  };
}

fl::SimulationOptions base_options() {
  fl::SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 1;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 8;
  opt.eval_every = 2;
  opt.seed = 1234;
  return opt;
}

void expect_sim_bit_identical(const fl::SimulationResult& a,
                              const fl::SimulationResult& b) {
  EXPECT_EQ(a.final_params, b.final_params);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_TRUE(fl::bitwise_equal(a.history[i], b.history[i]))
        << "iteration record " << i;
  }
  EXPECT_EQ(a.eliminations_per_client, b.eliminations_per_client);
  EXPECT_EQ(a.uploads_per_client, b.uploads_per_client);
  EXPECT_EQ(a.uploaded_bytes, b.uploaded_bytes);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.validation, b.validation);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
}

TEST(RoundEngine, SyncFullParticipationMatchesSimulation) {
  const auto spec = testbed_spec(10);
  auto testbed = std::make_shared<fl::ConvexTestbed>(spec);
  const auto opt = base_options();

  // Reference: the existing trainer over an eager client vector.
  fl::ConvexWorkload w = fl::make_convex_workload(spec);
  fl::FederatedSimulation sim(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w.evaluator, opt);
  const fl::SimulationResult reference = sim.run();

  // Engine: the same devices behind a lazily materializing population.
  PopulationSpec pop_spec;
  pop_spec.devices = spec.clients;
  pop_spec.max_resident = 4;  // force evictions mid-run
  Population population(pop_spec, factory_for(spec, testbed));
  RoundEngine engine(
      population,
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      evaluator_for(testbed), opt);
  const EngineResult result = engine.run();

  expect_sim_bit_identical(result.sim, reference);
  EXPECT_EQ(result.sched.invited, 10u * opt.max_iterations);
  EXPECT_EQ(result.sched.reported, result.sched.invited);
  EXPECT_EQ(result.sched.discarded_stragglers, 0u);
  // The warm pool stayed bounded even though every device participated.
  EXPECT_LE(result.sched.peak_resident_clients,
            pop_spec.max_resident + 10u);
}

TEST(RoundEngine, OverSelectionKeepsFirstKAndCountsStragglers) {
  const auto spec = testbed_spec(40);
  auto testbed = std::make_shared<fl::ConvexTestbed>(spec);

  auto opt = base_options();
  opt.max_iterations = 6;
  opt.schedule.mode = RoundMode::kOverSelect;
  opt.schedule.selection = Selection::kAvailabilityAware;
  opt.schedule.sample_size = 12;
  opt.schedule.target_reports = 8;

  PopulationSpec pop_spec;
  pop_spec.devices = spec.clients;
  pop_spec.mean_on_fraction = 0.8;
  pop_spec.dropout_mid_round = 0.05;
  pop_spec.max_resident = 12;
  pop_spec.seed = 5;
  Population population(pop_spec, factory_for(spec, testbed));
  RoundEngine engine(population, std::make_unique<core::AcceptAllFilter>(),
                     evaluator_for(testbed), opt);
  const EngineResult r = engine.run();

  ASSERT_EQ(r.sim.history.size(), 6u);
  EXPECT_EQ(r.sched.invited, 12u * 6u);
  for (const auto& rec : r.sim.history) {
    // First-K commit: never more than K counted reports per round.
    EXPECT_LE(rec.participants, 8u);
    EXPECT_LE(rec.uploads, rec.participants);
  }
  // 12 invited for 8 kept: stragglers must exist (minus dropouts/offline).
  EXPECT_GT(r.sched.discarded_stragglers, 0u);
  EXPECT_EQ(r.sched.reported + r.sched.unavailable_invited +
                r.sched.mid_round_dropouts + r.sched.discarded_stragglers,
            r.sched.invited);
  EXPECT_GT(r.sim.uploaded_bytes, 0u);
}

TEST(RoundEngine, BufferedAsyncAggregatesWithStaleness) {
  const auto spec = testbed_spec(60);
  auto testbed = std::make_shared<fl::ConvexTestbed>(spec);

  auto opt = base_options();
  opt.max_iterations = 12;  // aggregations, not rounds
  opt.eval_every = 4;
  opt.schedule.mode = RoundMode::kBufferedAsync;
  opt.schedule.selection = Selection::kAvailabilityAware;
  opt.schedule.sample_size = 16;
  opt.schedule.async_buffer = 6;
  opt.schedule.staleness_exponent = 0.5;

  PopulationSpec pop_spec;
  pop_spec.devices = spec.clients;
  pop_spec.mean_on_fraction = 0.9;
  pop_spec.latency_log_sigma = 0.6;  // heavy-tailed latency -> staleness
  pop_spec.max_resident = 16;
  pop_spec.seed = 6;
  Population population(pop_spec, factory_for(spec, testbed));
  RoundEngine engine(population, std::make_unique<core::AcceptAllFilter>(),
                     evaluator_for(testbed), opt);
  const EngineResult r = engine.run();

  ASSERT_EQ(r.sim.history.size(), 12u);
  bool any_stale = false;
  for (std::size_t i = 0; i < r.sim.history.size(); ++i) {
    const auto& rec = r.sim.history[i];
    EXPECT_EQ(rec.iteration, i + 1);
    EXPECT_GE(rec.uploads, opt.schedule.async_buffer);
    any_stale = any_stale || rec.staleness_max > 0;
  }
  // With 16 in flight and aggregation every 6 uploads, some updates must
  // arrive after the model version they trained on has moved.
  EXPECT_TRUE(any_stale);
  EXPECT_GT(r.sim.final_accuracy, 0.0);
  EXPECT_EQ(r.sched.stale_discarded, 0u);  // max_staleness == 0 keeps all
}

TEST(RoundEngine, MaxStalenessDiscardsLateUploads) {
  const auto spec = testbed_spec(60);
  auto testbed = std::make_shared<fl::ConvexTestbed>(spec);

  auto opt = base_options();
  opt.max_iterations = 12;
  opt.eval_every = 0;
  opt.schedule.mode = RoundMode::kBufferedAsync;
  opt.schedule.selection = Selection::kAvailabilityAware;
  opt.schedule.sample_size = 16;
  opt.schedule.async_buffer = 4;
  opt.schedule.max_staleness = 1;

  PopulationSpec pop_spec;
  pop_spec.devices = spec.clients;
  pop_spec.latency_log_sigma = 0.8;
  pop_spec.max_resident = 16;
  pop_spec.seed = 6;
  Population population(pop_spec, factory_for(spec, testbed));
  RoundEngine engine(population, std::make_unique<core::AcceptAllFilter>(),
                     evaluator_for(testbed), opt);
  const EngineResult r = engine.run();
  EXPECT_GT(r.sched.stale_discarded, 0u);
  for (const auto& rec : r.sim.history) {
    EXPECT_LE(rec.staleness_max, 1u);
  }
}

// --- Kill-and-resume bit-identity in the production round modes ---

struct EngineRun {
  fl::SimulationOptions opt;
  PopulationSpec pop_spec;
  fl::ConvexTestbedSpec spec;
  std::shared_ptr<fl::ConvexTestbed> testbed;

  EngineResult run() const {
    Population population(pop_spec, factory_for(spec, testbed));
    RoundEngine engine(population,
                       std::make_unique<core::AcceptAllFilter>(),
                       evaluator_for(testbed), opt);
    return engine.run();
  }

  EngineResult crash_and_resume(std::size_t crash_at) const {
    {
      auto first_half = opt;
      first_half.max_iterations = crash_at;
      Population population(pop_spec, factory_for(spec, testbed));
      RoundEngine engine(population,
                         std::make_unique<core::AcceptAllFilter>(),
                         evaluator_for(testbed), first_half);
      engine.run();
    }  // the engine and its population die here
    const fl::TrainerCheckpoint ck =
        fl::load_checkpoint_file(opt.checkpoint_path);
    EXPECT_EQ(ck.iteration, crash_at);
    EXPECT_EQ(ck.sched.engaged, 1);
    Population population(pop_spec, factory_for(spec, testbed));
    RoundEngine engine(population,
                       std::make_unique<core::AcceptAllFilter>(),
                       evaluator_for(testbed), opt);
    return engine.resume(ck);
  }
};

EngineRun overselect_run(const std::string& path) {
  EngineRun r;
  r.spec = testbed_spec(40);
  r.testbed = std::make_shared<fl::ConvexTestbed>(r.spec);
  r.opt = base_options();
  r.opt.max_iterations = 10;
  r.opt.eval_every = 5;
  r.opt.checkpoint_every = 5;
  r.opt.checkpoint_path = path;
  r.opt.schedule.mode = RoundMode::kOverSelect;
  r.opt.schedule.selection = Selection::kAvailabilityAware;
  r.opt.schedule.sample_size = 10;
  r.opt.schedule.target_reports = 7;
  r.pop_spec.devices = r.spec.clients;
  r.pop_spec.mean_on_fraction = 0.8;
  r.pop_spec.dropout_mid_round = 0.05;
  r.pop_spec.max_resident = 6;
  r.pop_spec.seed = 5;
  return r;
}

TEST(RoundEngineResume, OverSelectionResumesBitIdentically) {
  const std::string path = ::testing::TempDir() + "ck_sched_osel.bin";
  std::remove(path.c_str());
  const EngineRun run = overselect_run(path);

  const EngineResult uninterrupted = run.run();
  const EngineResult resumed = run.crash_and_resume(5);

  expect_sim_bit_identical(resumed.sim, uninterrupted.sim);
  EXPECT_EQ(resumed.sched.invited, uninterrupted.sched.invited);
  EXPECT_EQ(resumed.sched.reported, uninterrupted.sched.reported);
  EXPECT_EQ(resumed.sched.discarded_stragglers,
            uninterrupted.sched.discarded_stragglers);
  EXPECT_EQ(resumed.sched.mid_round_dropouts,
            uninterrupted.sched.mid_round_dropouts);
  std::remove(path.c_str());
}

TEST(RoundEngineResume, BufferedAsyncResumesBitIdentically) {
  const std::string path = ::testing::TempDir() + "ck_sched_async.bin";
  std::remove(path.c_str());

  EngineRun run;
  run.spec = testbed_spec(50);
  run.testbed = std::make_shared<fl::ConvexTestbed>(run.spec);
  run.opt = base_options();
  run.opt.max_iterations = 12;
  // Must divide the crash iteration so the killed run's forced final eval
  // coincides with a scheduled one (same caveat as the simulation tests).
  run.opt.eval_every = 3;
  run.opt.checkpoint_every = 6;
  run.opt.checkpoint_path = path;
  run.opt.schedule.mode = RoundMode::kBufferedAsync;
  run.opt.schedule.selection = Selection::kAvailabilityAware;
  run.opt.schedule.sample_size = 14;
  run.opt.schedule.async_buffer = 5;
  run.opt.schedule.staleness_exponent = 0.5;
  run.pop_spec.devices = run.spec.clients;
  run.pop_spec.mean_on_fraction = 0.85;
  run.pop_spec.latency_log_sigma = 0.6;
  run.pop_spec.max_resident = 8;
  run.pop_spec.seed = 9;

  const EngineResult uninterrupted = run.run();
  // The async checkpoint carries the in-flight report queue: reports
  // trained before the crash arrive after the resume.
  const EngineResult resumed = run.crash_and_resume(6);

  expect_sim_bit_identical(resumed.sim, uninterrupted.sim);
  EXPECT_EQ(resumed.sched.reported, uninterrupted.sched.reported);
  EXPECT_EQ(resumed.sched.stale_discarded,
            uninterrupted.sched.stale_discarded);
  std::remove(path.c_str());
}

TEST(RoundEngine, CodecSyncRunMatchesSimulationBitForBit) {
  // The engine's codec path must agree with FederatedSimulation's for every
  // production codec: same per-client codec streams (seed_salt + k), same
  // encoded byte accounting, same reconstructed aggregates.
  for (const char* spec : {"sign", "quant:8", "topk:0.1", "codebook:8,4"}) {
    SCOPED_TRACE(spec);
    const auto tb_spec = testbed_spec(10);
    auto testbed = std::make_shared<fl::ConvexTestbed>(tb_spec);
    auto opt = base_options();
    opt.codec.spec = spec;

    fl::ConvexWorkload w = fl::make_convex_workload(tb_spec);
    fl::FederatedSimulation sim(
        std::move(w.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w.evaluator, opt);
    const fl::SimulationResult reference = sim.run();

    PopulationSpec pop_spec;
    pop_spec.devices = tb_spec.clients;
    pop_spec.max_resident = 4;
    Population population(pop_spec, factory_for(tb_spec, testbed));
    RoundEngine engine(
        population,
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        evaluator_for(testbed), opt);
    const EngineResult result = engine.run();

    expect_sim_bit_identical(result.sim, reference);
  }
}

TEST(RoundEngine, CodecRunsAreThreadCountInvariant) {
  // The parallel trainer must not perturb any codec stream: per-client
  // codecs are seeded by device id and touched in a deterministic order, so
  // parallel and serial runs agree on every byte.
  auto run_with = [](bool parallel) {
    const auto tb_spec = testbed_spec(12);
    auto testbed = std::make_shared<fl::ConvexTestbed>(tb_spec);
    auto opt = base_options();
    opt.codec.spec = "topk:0.1";
    opt.parallel = parallel;
    PopulationSpec pop_spec;
    pop_spec.devices = tb_spec.clients;
    pop_spec.max_resident = 5;
    Population population(pop_spec, factory_for(tb_spec, testbed));
    RoundEngine engine(population,
                       std::make_unique<core::AcceptAllFilter>(),
                       evaluator_for(testbed), opt);
    return engine.run();
  };
  const EngineResult serial = run_with(false);
  const EngineResult parallel = run_with(true);
  expect_sim_bit_identical(parallel.sim, serial.sim);
  EXPECT_EQ(parallel.sched.reported, serial.sched.reported);
}

TEST(RoundEngine, CodecShrinksUploadedBytesInEveryRoundMode) {
  // The encoded-wire-bytes accounting flows through all three round modes.
  for (const RoundMode mode : {RoundMode::kSync, RoundMode::kOverSelect,
                               RoundMode::kBufferedAsync}) {
    SCOPED_TRACE(static_cast<int>(mode));
    auto run_with = [&](const char* spec) {
      auto tb_spec = testbed_spec(20);
      tb_spec.dim = 512;  // large enough that headers do not dominate
      auto testbed = std::make_shared<fl::ConvexTestbed>(tb_spec);
      auto opt = base_options();
      opt.codec.spec = spec;
      opt.schedule.mode = mode;
      if (mode != RoundMode::kSync) {
        opt.schedule.selection = Selection::kAvailabilityAware;
        opt.schedule.sample_size = 10;
        opt.schedule.target_reports = 7;
        opt.schedule.async_buffer = 4;
      }
      PopulationSpec pop_spec;
      pop_spec.devices = tb_spec.clients;
      pop_spec.max_resident = 8;
      pop_spec.seed = 3;
      Population population(pop_spec, factory_for(tb_spec, testbed));
      RoundEngine engine(population,
                         std::make_unique<core::AcceptAllFilter>(),
                         evaluator_for(testbed), opt);
      return engine.run();
    };
    const EngineResult dense = run_with("dense");
    const EngineResult sign = run_with("sign");
    EXPECT_EQ(sign.sim.total_rounds, dense.sim.total_rounds);
    EXPECT_GT(sign.sim.uploaded_bytes, 0u);
    // Sign payloads are ~32x smaller; even with headers, 8x is safe.
    EXPECT_LT(sign.sim.uploaded_bytes, dense.sim.uploaded_bytes / 8);
  }
}

TEST(RoundEngineResume, CodecStateResumesBitIdenticallyInBothModes) {
  // The checkpoint's per-device codec streams (top-k residuals here) must
  // survive kill-and-resume in the over-selection and buffered-async modes:
  // a device's residual carries across the crash boundary.
  {
    const std::string path = ::testing::TempDir() + "ck_codec_osel.bin";
    std::remove(path.c_str());
    EngineRun run = overselect_run(path);
    run.opt.codec.spec = "topk:0.1";
    const EngineResult uninterrupted = run.run();
    const EngineResult resumed = run.crash_and_resume(5);
    expect_sim_bit_identical(resumed.sim, uninterrupted.sim);
    std::remove(path.c_str());
  }
  {
    const std::string path = ::testing::TempDir() + "ck_codec_async.bin";
    std::remove(path.c_str());
    EngineRun run;
    run.spec = testbed_spec(50);
    run.testbed = std::make_shared<fl::ConvexTestbed>(run.spec);
    run.opt = base_options();
    run.opt.codec.spec = "quant:4";
    run.opt.max_iterations = 12;
    run.opt.eval_every = 3;
    run.opt.checkpoint_every = 6;
    run.opt.checkpoint_path = path;
    run.opt.schedule.mode = RoundMode::kBufferedAsync;
    run.opt.schedule.selection = Selection::kAvailabilityAware;
    run.opt.schedule.sample_size = 14;
    run.opt.schedule.async_buffer = 5;
    run.pop_spec.devices = run.spec.clients;
    run.pop_spec.mean_on_fraction = 0.85;
    run.pop_spec.latency_log_sigma = 0.6;
    run.pop_spec.max_resident = 8;
    run.pop_spec.seed = 9;
    const EngineResult uninterrupted = run.run();
    const EngineResult resumed = run.crash_and_resume(6);
    expect_sim_bit_identical(resumed.sim, uninterrupted.sim);
    std::remove(path.c_str());
  }
}

// --- Sharded parameter-server bit-identity (DESIGN.md §17) ---

TEST(RoundEngine, ShardedRunsMatchSingleMasterBitForBit) {
  // The tentpole acceptance criterion: S in {1, 2, 4, 8} shards produce the
  // exact trajectory of the single-master path (S = 0), in a configuration
  // that exercises screening (non-finite-rejection policy active), CMFL
  // relevance filtering, and the robust clipped rule whose plan consumes the
  // shard workers' norms.
  auto run_with = [](std::size_t shards) {
    const auto spec = testbed_spec(24);
    auto testbed = std::make_shared<fl::ConvexTestbed>(spec);
    auto opt = base_options();
    opt.max_iterations = 6;
    opt.aggregation = fl::Aggregation::kNormClippedMean;
    opt.schedule.mode = RoundMode::kOverSelect;
    opt.schedule.selection = Selection::kAvailabilityAware;
    opt.schedule.sample_size = 12;
    opt.schedule.target_reports = 9;
    opt.sharding.shards = shards;
    PopulationSpec pop_spec;
    pop_spec.devices = spec.clients;
    pop_spec.mean_on_fraction = 0.85;
    pop_spec.max_resident = 8;
    pop_spec.seed = 5;
    Population population(pop_spec, factory_for(spec, testbed));
    RoundEngine engine(
        population,
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        evaluator_for(testbed), opt);
    return engine.run();
  };

  const EngineResult single_master = run_with(0);
  for (const std::size_t s : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards " + std::to_string(s));
    const EngineResult sharded = run_with(s);
    expect_sim_bit_identical(sharded.sim, single_master.sim);
    EXPECT_EQ(sharded.sched.invited, single_master.sched.invited);
    EXPECT_EQ(sharded.sched.reported, single_master.sched.reported);
    EXPECT_EQ(sharded.sched.evictions, single_master.sched.evictions);
  }
}

TEST(RoundEngine, ShardingComposesWithWorkStealingPool) {
  // Both concurrency layers on at once (parallel training pool + sharded
  // ingest) against both off — still bit-identical.
  auto run_with = [](bool parallel, std::size_t shards) {
    const auto spec = testbed_spec(16);
    auto testbed = std::make_shared<fl::ConvexTestbed>(spec);
    auto opt = base_options();
    opt.parallel = parallel;
    opt.sharding.shards = shards;
    PopulationSpec pop_spec;
    pop_spec.devices = spec.clients;
    pop_spec.max_resident = 5;
    Population population(pop_spec, factory_for(spec, testbed));
    RoundEngine engine(
        population,
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        evaluator_for(testbed), opt);
    return engine.run();
  };
  const EngineResult serial = run_with(false, 0);
  const EngineResult concurrent = run_with(true, 4);
  expect_sim_bit_identical(concurrent.sim, serial.sim);
  EXPECT_EQ(concurrent.sched.materializations, serial.sched.materializations);
  EXPECT_EQ(concurrent.sched.evictions, serial.sched.evictions);
  EXPECT_EQ(concurrent.sched.peak_resident_clients,
            serial.sched.peak_resident_clients);
}

TEST(RoundEngineResume, ShardStatsResumeBitIdentically) {
  // Checkpoint v4 carries per-shard ingest counters; a killed-and-resumed
  // sharded run must agree with the uninterrupted one on the trajectory.
  const std::string path = ::testing::TempDir() + "ck_sched_shard.bin";
  std::remove(path.c_str());
  EngineRun run = overselect_run(path);
  run.opt.sharding.shards = 3;

  const EngineResult uninterrupted = run.run();
  const EngineResult resumed = run.crash_and_resume(5);
  expect_sim_bit_identical(resumed.sim, uninterrupted.sim);
  EXPECT_EQ(resumed.sched.reported, uninterrupted.sched.reported);
  std::remove(path.c_str());
}

TEST(RoundEngineResume, ShardConfigMismatchIsRejected) {
  const std::string path = ::testing::TempDir() + "ck_sched_shard_mm.bin";
  std::remove(path.c_str());
  EngineRun run = overselect_run(path);
  run.opt.sharding.shards = 2;
  {
    auto first_half = run.opt;
    first_half.max_iterations = 5;
    Population population(run.pop_spec, factory_for(run.spec, run.testbed));
    RoundEngine engine(population, std::make_unique<core::AcceptAllFilter>(),
                       evaluator_for(run.testbed), first_half);
    engine.run();
  }
  const fl::TrainerCheckpoint ck = fl::load_checkpoint_file(path);
  EXPECT_FALSE(ck.sched.shard_stats.empty());

  // Resuming a sharded checkpoint with sharding disabled must throw...
  {
    auto no_shards = run.opt;
    no_shards.sharding.shards = 0;
    Population population(run.pop_spec, factory_for(run.spec, run.testbed));
    RoundEngine engine(population, std::make_unique<core::AcceptAllFilter>(),
                       evaluator_for(run.testbed), no_shards);
    EXPECT_THROW(engine.resume(ck), std::invalid_argument);
  }
  // ...and so must a different shard count (stats word count mismatch).
  {
    auto more_shards = run.opt;
    more_shards.sharding.shards = 4;
    Population population(run.pop_spec, factory_for(run.spec, run.testbed));
    RoundEngine engine(population, std::make_unique<core::AcceptAllFilter>(),
                       evaluator_for(run.testbed), more_shards);
    EXPECT_THROW(engine.resume(ck), std::invalid_argument);
  }
  std::remove(path.c_str());
}

TEST(RoundEngine, RejectsUnsupportedOptionsAndForeignCheckpoints) {
  const auto spec = testbed_spec(4);
  auto testbed = std::make_shared<fl::ConvexTestbed>(spec);
  PopulationSpec pop_spec;
  pop_spec.devices = spec.clients;
  Population population(pop_spec, factory_for(spec, testbed));

  auto bogus = base_options();
  bogus.codec.spec = "zstd";  // codecs are supported now, unknown specs not
  EXPECT_THROW(RoundEngine(population,
                           std::make_unique<core::AcceptAllFilter>(),
                           evaluator_for(testbed), bogus),
               std::invalid_argument);

  auto capture = base_options();
  capture.capture_client_params = true;
  EXPECT_THROW(RoundEngine(population,
                           std::make_unique<core::AcceptAllFilter>(),
                           evaluator_for(testbed), capture),
               std::invalid_argument);

  RoundEngine engine(population, std::make_unique<core::AcceptAllFilter>(),
                     evaluator_for(testbed), base_options());
  fl::TrainerCheckpoint not_engine;  // sched.engaged == 0
  not_engine.iteration = 1;
  not_engine.global_params.assign(engine.param_count(), 0.0f);
  EXPECT_THROW(engine.resume(not_engine), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::sched

// Test-only heap-allocation counter.
//
// alloc_counter.cpp replaces the global operator new/delete with versions
// that bump an atomic counter, letting tests assert that a code region
// performs zero heap allocations (the steady-state training-step contract,
// DESIGN.md §12).  Link alloc_counter.cpp into the test binary to activate
// the hook; binaries that do not link it are unaffected.
#pragma once

#include <cstddef>

namespace cmfl::testing {

/// Resets the global allocation counter to zero.
void reset_alloc_count() noexcept;

/// Number of operator new / new[] calls (any alignment) since the last
/// reset, across all threads.
std::size_t alloc_count() noexcept;

}  // namespace cmfl::testing

#include "stats/cdf.h"
#include "stats/summary.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmfl::stats {
namespace {

TEST(Cdf, EmptyRejected) {
  EXPECT_THROW(Cdf({}), std::invalid_argument);
}

TEST(Cdf, FractionAtOrBelow) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(100.0), 1.0);
}

TEST(Cdf, Quantiles) {
  Cdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_THROW(cdf.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(cdf.quantile(1.1), std::invalid_argument);
}

TEST(Cdf, MinMaxCount) {
  Cdf cdf({7.0, -2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.min(), -2.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 7.0);
  EXPECT_EQ(cdf.count(), 3u);
}

TEST(Cdf, PlotSeriesMonotone) {
  std::vector<double> samples;
  for (int i = 100; i > 0; --i) samples.push_back(i * 0.37);
  Cdf cdf(std::move(samples));
  const auto series = cdf.plot_series(10);
  ASSERT_EQ(series.size(), 10u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].x, series[i - 1].x);
    EXPECT_GT(series[i].fraction, series[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(series.back().fraction, 1.0);
}

TEST(Cdf, PlotSeriesCappedAtSampleCount) {
  Cdf cdf({1.0, 2.0});
  EXPECT_EQ(cdf.plot_series(10).size(), 2u);
  EXPECT_TRUE(cdf.plot_series(0).empty());
}

TEST(Running, MeanVarianceMinMax) {
  Running r;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) r.add(x);
  EXPECT_EQ(r.count(), 8u);
  EXPECT_DOUBLE_EQ(r.mean(), 5.0);
  EXPECT_DOUBLE_EQ(r.variance(), 4.0);
  EXPECT_DOUBLE_EQ(r.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(r.min(), 2.0);
  EXPECT_DOUBLE_EQ(r.max(), 9.0);
}

TEST(Running, SingleSampleHasZeroVariance) {
  Running r;
  r.add(3.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean(), 3.0);
}

TEST(MeanOf, HandlesEmptyAndValues) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  const std::vector<double> xs = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.0);
}

}  // namespace
}  // namespace cmfl::stats

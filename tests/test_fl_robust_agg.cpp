// Robust aggregation rules and server-side update validation: exact math,
// outlier resistance, quarantine accounting, checkpoint restore.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "fl/robust_agg.h"

namespace cmfl::fl {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kInf = std::numeric_limits<float>::infinity();

std::vector<std::span<const float>> views(
    const std::vector<std::vector<float>>& updates) {
  std::vector<std::span<const float>> v;
  v.reserve(updates.size());
  for (const auto& u : updates) v.emplace_back(u);
  return v;
}

std::vector<float> aggregate(Aggregation rule,
                             const std::vector<std::vector<float>>& updates,
                             std::span<const float> weights = {},
                             RobustAggOptions opts = {}) {
  std::vector<float> out(updates.front().size());
  aggregate_updates(rule, views(updates), weights, opts, out);
  return out;
}

TEST(Aggregation, NamesRoundTrip) {
  for (const auto rule :
       {Aggregation::kUniformMean, Aggregation::kSampleWeighted,
        Aggregation::kMedian, Aggregation::kTrimmedMean,
        Aggregation::kNormClippedMean}) {
    EXPECT_EQ(parse_aggregation(aggregation_name(rule)), rule);
  }
  EXPECT_THROW(parse_aggregation("krum"), std::invalid_argument);
}

TEST(Aggregation, UniformMeanIsExact) {
  const auto out = aggregate(Aggregation::kUniformMean,
                             {{1.0f, -2.0f}, {3.0f, 4.0f}});
  EXPECT_FLOAT_EQ(out[0], 2.0f);
  EXPECT_FLOAT_EQ(out[1], 1.0f);
}

TEST(Aggregation, SampleWeightedUsesWeights) {
  const std::vector<float> w = {0.75f, 0.25f};
  const auto out =
      aggregate(Aggregation::kSampleWeighted, {{4.0f}, {8.0f}}, w);
  EXPECT_FLOAT_EQ(out[0], 4.0f * 0.75f + 8.0f * 0.25f);
}

TEST(Aggregation, SampleWeightedRequiresMatchingWeights) {
  std::vector<float> out(1);
  const std::vector<std::vector<float>> ups = {{1.0f}, {2.0f}};
  const std::vector<float> w = {1.0f};  // one weight, two updates
  EXPECT_THROW(
      aggregate_updates(Aggregation::kSampleWeighted, views(ups), w, {}, out),
      std::invalid_argument);
}

TEST(Aggregation, MedianIgnoresASingleOutlier) {
  // Two honest updates agree; one Byzantine update is enormous.  The
  // coordinate-wise median sides with the honest majority; the mean is
  // dragged three orders of magnitude away.
  const std::vector<std::vector<float>> ups = {
      {1.0f, -1.0f}, {1.2f, -0.8f}, {1000.0f, -1000.0f}};
  const auto med = aggregate(Aggregation::kMedian, ups);
  EXPECT_FLOAT_EQ(med[0], 1.2f);
  EXPECT_FLOAT_EQ(med[1], -1.0f);
  const auto mean = aggregate(Aggregation::kUniformMean, ups);
  EXPECT_GT(mean[0], 300.0f);
}

TEST(Aggregation, TrimmedMeanDropsBothExtremes) {
  const std::vector<std::vector<float>> ups = {
      {-100.0f}, {1.0f}, {2.0f}, {3.0f}, {100.0f}};
  RobustAggOptions opts;
  opts.trim_fraction = 0.2;  // 5 updates -> trim 1 per side
  const auto out = aggregate(Aggregation::kTrimmedMean, ups, {}, opts);
  EXPECT_FLOAT_EQ(out[0], 2.0f);
}

TEST(Aggregation, TrimmedMeanAlwaysKeepsASurvivor) {
  RobustAggOptions opts;
  opts.trim_fraction = 0.49;  // with 2 updates naive trimming would drop all
  const auto out =
      aggregate(Aggregation::kTrimmedMean, {{2.0f}, {4.0f}}, {}, opts);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
  EXPECT_THROW(aggregate(Aggregation::kTrimmedMean, {{1.0f}}, {},
                         RobustAggOptions{.trim_fraction = 0.6}),
               std::invalid_argument);
}

TEST(Aggregation, NormClippedBoundsTheOutliersInfluence) {
  // Honest updates have norm 1; the attacker's has norm 1000.  With the
  // auto (median-norm) radius the attacker contributes at most norm 1/n.
  const std::vector<std::vector<float>> ups = {
      {1.0f, 0.0f}, {0.0f, 1.0f}, {1000.0f, 0.0f}};
  const auto out = aggregate(Aggregation::kNormClippedMean, ups);
  EXPECT_NEAR(out[0], (1.0f + 0.0f + 1.0f) / 3.0f, 1e-5);
  EXPECT_NEAR(out[1], 1.0f / 3.0f, 1e-5);
}

TEST(Aggregation, NormClippedHonorsExplicitRadius) {
  RobustAggOptions opts;
  opts.clip_norm = 0.5;
  const auto out =
      aggregate(Aggregation::kNormClippedMean, {{2.0f, 0.0f}}, {}, opts);
  EXPECT_NEAR(out[0], 0.5f, 1e-6);  // clipped from norm 2 to 0.5, n = 1
}

TEST(Aggregation, RejectsEmptyAndMismatchedInput) {
  std::vector<float> out(2);
  EXPECT_THROW(aggregate_updates(Aggregation::kUniformMean, {}, {}, {}, out),
               std::invalid_argument);
  const std::vector<std::vector<float>> ups = {{1.0f, 2.0f}, {1.0f}};
  EXPECT_THROW(
      aggregate_updates(Aggregation::kMedian, views(ups), {}, {}, out),
      std::invalid_argument);
}

// --- UpdateValidator ---

std::vector<Verdict> screen(UpdateValidator& v,
                            const std::vector<std::size_t>& clients,
                            const std::vector<std::vector<float>>& updates) {
  return v.screen_round(clients, views(updates));
}

TEST(UpdateValidator, RejectsNonFiniteUpdates) {
  UpdateValidator v(3, {});
  const auto verdicts = screen(v, {0, 1, 2},
                               {{1.0f, 2.0f}, {kNaN, 0.0f}, {0.0f, kInf}});
  EXPECT_EQ(verdicts[0], Verdict::kAccept);
  EXPECT_EQ(verdicts[1], Verdict::kNonFinite);
  EXPECT_EQ(verdicts[2], Verdict::kNonFinite);
  EXPECT_EQ(v.report().rejected_nonfinite, 2u);
}

TEST(UpdateValidator, AbsoluteNormBound) {
  ValidationPolicy policy;
  policy.max_norm = 5.0;
  UpdateValidator v(2, policy);
  const auto verdicts = screen(v, {0, 1}, {{3.0f, 0.0f}, {6.0f, 0.0f}});
  EXPECT_EQ(verdicts[0], Verdict::kAccept);
  EXPECT_EQ(verdicts[1], Verdict::kNormExploded);
  EXPECT_EQ(v.report().rejected_norm, 1u);
}

TEST(UpdateValidator, RelativeNormBoundUsesRoundMedian) {
  ValidationPolicy policy;
  policy.norm_multiple = 10.0;
  UpdateValidator v(4, policy);
  // Median norm ~1; the 100-norm update exceeds 10x the median.
  const auto verdicts = screen(
      v, {0, 1, 2, 3},
      {{1.0f, 0.0f}, {0.0f, 1.2f}, {0.9f, 0.0f}, {100.0f, 0.0f}});
  EXPECT_EQ(verdicts[0], Verdict::kAccept);
  EXPECT_EQ(verdicts[1], Verdict::kAccept);
  EXPECT_EQ(verdicts[2], Verdict::kAccept);
  EXPECT_EQ(verdicts[3], Verdict::kNormExploded);
}

TEST(UpdateValidator, RelativeRuleNeedsThreeFiniteUpdates) {
  ValidationPolicy policy;
  policy.norm_multiple = 2.0;
  UpdateValidator v(2, policy);
  // Only two updates: the relative rule stays quiet even though one norm
  // dwarfs the other.
  const auto verdicts = screen(v, {0, 1}, {{1.0f}, {100.0f}});
  EXPECT_EQ(verdicts[0], Verdict::kAccept);
  EXPECT_EQ(verdicts[1], Verdict::kAccept);
}

TEST(UpdateValidator, RepeatOffendersAreQuarantined) {
  ValidationPolicy policy;
  policy.quarantine_after = 2;
  UpdateValidator v(2, policy);
  for (int round = 0; round < 2; ++round) {
    screen(v, {0, 1}, {{1.0f}, {kNaN}});
  }
  EXPECT_TRUE(v.quarantined(1));
  EXPECT_FALSE(v.quarantined(0));
  // Further uploads from the quarantined client are discarded unseen, even
  // perfectly healthy ones.
  const auto verdicts = screen(v, {0, 1}, {{1.0f}, {1.0f}});
  EXPECT_EQ(verdicts[0], Verdict::kAccept);
  EXPECT_EQ(verdicts[1], Verdict::kQuarantined);
  EXPECT_EQ(v.report().discarded_quarantined, 1u);
  EXPECT_EQ(v.report().quarantined_count(), 1u);
  EXPECT_EQ(v.report().total_rejected(), 3u);
}

TEST(UpdateValidator, ZeroQuarantineAfterNeverQuarantines) {
  ValidationPolicy policy;
  policy.quarantine_after = 0;
  UpdateValidator v(1, policy);
  for (int round = 0; round < 10; ++round) {
    screen(v, {0}, {{kNaN}});
  }
  EXPECT_FALSE(v.quarantined(0));
  EXPECT_EQ(v.report().strikes[0], 10u);
}

TEST(UpdateValidator, RestoreRoundTripsReport) {
  ValidationPolicy policy;
  policy.quarantine_after = 1;
  UpdateValidator v(3, policy);
  screen(v, {0, 1, 2}, {{1.0f}, {kNaN}, {1.0f}});
  const ValidationReport saved = v.report();

  UpdateValidator fresh(3, policy);
  fresh.restore(saved);
  EXPECT_EQ(fresh.report(), saved);
  EXPECT_TRUE(fresh.quarantined(1));

  UpdateValidator wrong_size(2, policy);
  EXPECT_THROW(wrong_size.restore(saved), std::invalid_argument);
}

TEST(UpdateValidator, OutOfRangeClientThrows) {
  UpdateValidator v(2, {});
  const std::vector<std::vector<float>> ups = {{1.0f}};
  const std::vector<std::size_t> clients = {5};
  EXPECT_THROW(v.screen_round(clients, views(ups)), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::fl

#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cmfl::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  tensor::Matrix logits(2, 3, {1.0f, 2.0f, 3.0f, -5.0f, 0.0f, 5.0f});
  const tensor::Matrix p = softmax(logits);
  for (std::size_t r = 0; r < 2; ++r) {
    double sum = 0;
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_GT(p.at(r, c), 0.0f);
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-6);
  }
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  tensor::Matrix logits(1, 2, {1000.0f, 999.0f});
  const tensor::Matrix p = softmax(logits);
  EXPECT_TRUE(std::isfinite(p.at(0, 0)));
  EXPECT_NEAR(p.at(0, 0), 1.0 / (1.0 + std::exp(-1.0)), 1e-5);
}

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  tensor::Matrix logits(1, 4);
  std::vector<int> y = {2};
  tensor::Matrix grad;
  const double loss = softmax_cross_entropy(logits, y, grad);
  EXPECT_NEAR(loss, std::log(4.0), 1e-6);
  // Gradient: p - onehot, normalized by batch.
  EXPECT_NEAR(grad.at(0, 0), 0.25, 1e-6);
  EXPECT_NEAR(grad.at(0, 2), -0.75, 1e-6);
}

TEST(SoftmaxCrossEntropy, GradientSumsToZeroPerRow) {
  tensor::Matrix logits(3, 5);
  for (std::size_t i = 0; i < logits.size(); ++i) {
    logits.flat()[i] = static_cast<float>((i * 7 % 11)) * 0.3f - 1.0f;
  }
  std::vector<int> y = {0, 3, 4};
  tensor::Matrix grad;
  softmax_cross_entropy(logits, y, grad);
  for (std::size_t r = 0; r < 3; ++r) {
    double sum = 0;
    for (std::size_t c = 0; c < 5; ++c) sum += grad.at(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropy, Validation) {
  tensor::Matrix logits(2, 3);
  std::vector<int> wrong_count = {0};
  tensor::Matrix grad;
  EXPECT_THROW(softmax_cross_entropy(logits, wrong_count, grad),
               std::invalid_argument);
  std::vector<int> out_of_range = {0, 3};
  EXPECT_THROW(softmax_cross_entropy(logits, out_of_range, grad),
               std::invalid_argument);
  std::vector<int> negative = {0, -1};
  EXPECT_THROW(softmax_cross_entropy(logits, negative, grad),
               std::invalid_argument);
}

TEST(Accuracy, CountsArgmaxHits) {
  tensor::Matrix logits(3, 2, {0.9f, 0.1f, 0.2f, 0.8f, 0.6f, 0.4f});
  std::vector<int> y = {0, 1, 1};
  EXPECT_NEAR(accuracy(logits, y), 2.0 / 3.0, 1e-9);
}

TEST(ArgmaxRows, PicksMaxIndex) {
  tensor::Matrix logits(2, 3, {1.0f, 5.0f, 2.0f, 9.0f, 0.0f, 3.0f});
  const auto idx = argmax_rows(logits);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(Mse, LossAndGradient) {
  tensor::Matrix pred(1, 2, {1.0f, 3.0f});
  tensor::Matrix target(1, 2, {0.0f, 1.0f});
  tensor::Matrix grad;
  const double loss = mse(pred, target, grad);
  EXPECT_NEAR(loss, (1.0 + 4.0) / 2.0, 1e-6);  // mean squared error
  EXPECT_NEAR(grad.at(0, 0), 2.0 * 1.0 / 2.0, 1e-6);
  EXPECT_NEAR(grad.at(0, 1), 2.0 * 2.0 / 2.0, 1e-6);
}

TEST(Hinge, LossGradAndValidation) {
  std::vector<float> scores = {2.0f, -0.5f};
  std::vector<int> labels = {1, -1};
  std::vector<float> grad(2);
  const double loss = hinge(scores, labels, grad);
  // sample 0: margin 1-2 = -1 -> 0 loss; sample 1: 1-0.5=0.5 loss
  EXPECT_NEAR(loss, 0.25, 1e-9);
  EXPECT_FLOAT_EQ(grad[0], 0.0f);
  EXPECT_FLOAT_EQ(grad[1], 0.5f);
  std::vector<int> bad_labels = {1, 0};
  EXPECT_THROW(hinge(scores, bad_labels, grad), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::nn

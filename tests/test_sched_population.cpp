// sched::Population: deterministic hashed device traits, availability
// churn, lazy materialization with a bounded warm pool, and checkpointable
// sparse device state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "fl/convex_testbed.h"
#include "sched/population.h"

namespace cmfl::sched {
namespace {

ClientFactory convex_factory(std::size_t dim = 4, std::uint64_t seed = 5) {
  return [dim, seed](std::uint64_t device) {
    std::vector<float> center(dim);
    for (auto& c : center) {
      c = util::Rng(seed ^ device).normal_f(0.0f, 1.0f);
    }
    return std::make_unique<fl::ConvexClient>(center, /*local_steps=*/2,
                                              /*gradient_noise=*/0.1,
                                              util::Rng(seed).split(device),
                                              /*start_offset=*/0.0f);
  };
}

PopulationSpec churn_spec(std::uint64_t devices = 64) {
  PopulationSpec spec;
  spec.devices = devices;
  spec.mean_on_fraction = 0.6;
  spec.dropout_mid_round = 0.1;
  spec.seed = 99;
  return spec;
}

TEST(Population, ValidatesSpec) {
  EXPECT_THROW(Population(PopulationSpec{}, convex_factory()),
               std::invalid_argument);  // zero devices
  PopulationSpec bad = churn_spec();
  bad.mean_on_fraction = 1.5;
  EXPECT_THROW(Population(bad, convex_factory()), std::invalid_argument);
  EXPECT_THROW(Population(churn_spec(), nullptr), std::invalid_argument);
}

TEST(Population, TraitsAreDeterministicAndSeedSensitive) {
  Population a(churn_spec(), convex_factory());
  Population b(churn_spec(), convex_factory());
  PopulationSpec other = churn_spec();
  other.seed = 100;
  Population c(other, convex_factory());

  bool any_differs_across_seeds = false;
  for (std::uint64_t d = 0; d < 64; ++d) {
    EXPECT_EQ(a.speed_factor(d), b.speed_factor(d));
    EXPECT_GT(a.speed_factor(d), 0.0);
    for (std::uint64_t r = 1; r <= 10; ++r) {
      EXPECT_EQ(a.available(d, r), b.available(d, r));
      EXPECT_EQ(a.drops_mid_round(d, r), b.drops_mid_round(d, r));
      EXPECT_EQ(a.draw_latency(d, r), b.draw_latency(d, r));
      EXPECT_GT(a.draw_latency(d, r), 0.0);
      if (a.available(d, r) != c.available(d, r)) {
        any_differs_across_seeds = true;
      }
    }
  }
  EXPECT_TRUE(any_differs_across_seeds);
}

TEST(Population, ChurnMatchesMeanOnFraction) {
  Population p(churn_spec(1000), convex_factory());
  std::size_t on = 0;
  std::size_t total = 0;
  for (std::uint64_t d = 0; d < 1000; ++d) {
    for (std::uint64_t r = 1; r <= 20; ++r) {
      on += p.available(d, r) ? 1 : 0;
      ++total;
    }
  }
  const double frac = static_cast<double>(on) / static_cast<double>(total);
  EXPECT_NEAR(frac, 0.6, 0.05);
}

TEST(Population, DutyCyclesAlternateOnAndOffRuns) {
  PopulationSpec spec = churn_spec(32);
  spec.duty_period_rounds = 10.0;
  Population p(spec, convex_factory());
  // Every device must show both states over a few periods (no always-off
  // device at mean_on_fraction 0.6), and transitions must be runs, not
  // independent coin flips: count state changes over 60 rounds — a duty
  // cycle of period ~10 changes state ~12 times, a Bernoulli(0.6) sequence
  // ~28 times.
  for (std::uint64_t d = 0; d < 32; ++d) {
    std::size_t on = 0;
    std::size_t switches = 0;
    bool prev = p.available(d, 1);
    for (std::uint64_t r = 1; r <= 60; ++r) {
      const bool a = p.available(d, r);
      on += a ? 1 : 0;
      if (a != prev) ++switches;
      prev = a;
    }
    EXPECT_GT(on, 0u) << "device " << d;
    EXPECT_LT(on, 60u) << "device " << d;
    EXPECT_LT(switches, 20u) << "device " << d;
  }
}

TEST(Population, SampleIsDeterministicSortedAndExclusionAware) {
  Population p(churn_spec(200), convex_factory());
  util::Rng rng1(7);
  util::Rng rng2(7);
  const auto s1 = p.sample(3, 20, Selection::kUniform, rng1);
  const auto s2 = p.sample(3, 20, Selection::kUniform, rng2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 20u);
  EXPECT_TRUE(std::is_sorted(s1.begin(), s1.end()));
  EXPECT_EQ(std::set<std::uint64_t>(s1.begin(), s1.end()).size(), s1.size());

  // Excluded devices never appear.
  util::Rng rng3(7);
  const auto s3 = p.sample(3, 20, Selection::kUniform, rng3,
                           [](std::uint64_t d) { return d % 2 == 0; });
  for (const auto d : s3) EXPECT_EQ(d % 2, 1u);

  // Availability-aware sampling only picks devices on this round.
  util::Rng rng4(7);
  const auto s4 = p.sample(5, 20, Selection::kAvailabilityAware, rng4);
  for (const auto d : s4) EXPECT_TRUE(p.available(d, 5));
}

TEST(Population, LazyMaterializationAndLruEviction) {
  PopulationSpec spec = churn_spec(100);
  spec.max_resident = 2;
  Population p(spec, convex_factory());
  EXPECT_EQ(p.resident(), 0u);
  EXPECT_EQ(p.materializations(), 0u);

  auto& c0 = p.acquire(0);
  EXPECT_THROW(p.acquire(0), std::logic_error);  // double acquire
  auto& c1 = p.acquire(1);
  auto& c2 = p.acquire(2);
  (void)c0;
  (void)c1;
  (void)c2;
  EXPECT_EQ(p.resident(), 3u);       // in-use clients are never evicted
  EXPECT_EQ(p.peak_resident(), 3u);
  EXPECT_EQ(p.materializations(), 3u);

  p.release(0);
  p.release(1);
  p.release(2);
  // Warm pool capped at 2: the LRU client (0) was evicted on release.
  EXPECT_EQ(p.resident(), 2u);

  // Re-acquiring a warm client does not re-materialize; an evicted one does.
  p.acquire(1);
  p.release(1);
  EXPECT_EQ(p.materializations(), 3u);
  p.acquire(0);
  p.release(0);
  EXPECT_EQ(p.materializations(), 4u);
}

TEST(Population, EvictionPreservesMutableStateExactly) {
  // Drive a client's RNG, evict it, revive it: the revived client must
  // continue the stream exactly where the resident one left off.
  PopulationSpec spec = churn_spec(10);
  spec.max_resident = 0;  // evict immediately on release
  Population p(spec, convex_factory(/*dim=*/4));

  auto& first = p.acquire(7);
  std::vector<float> params(4);
  first.get_params(params);
  first.train_local(/*epochs=*/1, /*batch_size=*/1, /*lr=*/0.1f);
  std::vector<float> after_one(4);
  first.get_params(after_one);
  const auto state = first.mutable_state();
  p.release(7);
  EXPECT_EQ(p.resident(), 0u);

  auto& revived = p.acquire(7);
  EXPECT_EQ(revived.mutable_state(), state);
  // A twin population trained twice without eviction must match the
  // evict-revive trajectory bit-for-bit.
  Population q(spec, convex_factory(/*dim=*/4));
  auto& straight = q.acquire(7);
  straight.train_local(1, 1, 0.1f);
  revived.set_params(after_one);
  straight.train_local(1, 1, 0.1f);
  revived.train_local(1, 1, 0.1f);
  std::vector<float> a(4);
  std::vector<float> b(4);
  straight.get_params(a);
  revived.get_params(b);
  EXPECT_EQ(a, b);
  p.release(7);
  q.release(7);
}

TEST(Population, StateWordsRoundTrip) {
  PopulationSpec spec = churn_spec(50);
  spec.max_resident = 1;
  Population p(spec, convex_factory());
  for (const std::uint64_t d : {3u, 14u, 15u, 9u, 26u}) {
    auto& c = p.acquire(d);
    c.train_local(1, 1, 0.05f);
    p.release(d);
  }
  const auto words = p.state_words();
  EXPECT_FALSE(words.empty());

  // A fresh population restored from the words reports identical state.
  Population q(spec, convex_factory());
  q.restore_state_words(words);
  EXPECT_EQ(q.state_words(), words);
  // And revives clients with the saved streams.
  auto& from_p = p.acquire(14);
  auto& from_q = q.acquire(14);
  EXPECT_EQ(from_p.mutable_state(), from_q.mutable_state());
  p.release(14);
  q.release(14);

  // state_words while acquired is a logic error; malformed blobs rejected.
  p.acquire(3);
  EXPECT_THROW(p.state_words(), std::logic_error);
  p.release(3);
  std::vector<std::uint64_t> truncated(words.begin(), words.end() - 1);
  EXPECT_THROW(q.restore_state_words(truncated), std::invalid_argument);
}

TEST(Population, DeferredReleaseParksUntilTrimThenEvictsInSeqOrder) {
  PopulationSpec spec = churn_spec(100);
  spec.max_resident = 2;
  Population p(spec, convex_factory());
  for (const std::uint64_t d : {10u, 20u, 30u, 40u}) p.acquire(d);

  // Deferred releases in scrambled call order: nothing evicts mid-phase.
  p.release(30, 2);
  p.release(10, 0);
  p.release(40, 3);
  p.release(20, 1);
  EXPECT_EQ(p.resident(), 4u);
  EXPECT_EQ(p.evictions(), 0u);

  // The trim barrier evicts ascending seq: 10 (seq 0) and 20 (seq 1) go,
  // 30 and 40 stay warm.
  p.trim_warm();
  EXPECT_EQ(p.resident(), 2u);
  EXPECT_EQ(p.evictions(), 2u);
  const auto mats = p.materializations();
  p.acquire(30);
  p.acquire(40);
  EXPECT_EQ(p.materializations(), mats);  // warm hits
  p.release(30);
  p.release(40);
  p.acquire(10);
  EXPECT_EQ(p.materializations(), mats + 1);  // was evicted
  p.release(10);
}

TEST(Population, AutoSequencedReleasesEvictBeforeDeferredOnes) {
  // The two seq domains: legacy release(device) auto-sequences below every
  // caller seq, so setup-time probe releases always evict first at the
  // barrier.
  PopulationSpec spec = churn_spec(100);
  spec.max_resident = 1;
  Population p(spec, convex_factory());
  p.acquire(5);
  p.release(5);  // auto seq — the probe
  p.acquire(6);
  p.acquire(7);
  p.release(6, 0);  // caller seqs, own domain above the auto seq
  p.release(7, 1);
  p.trim_warm();
  EXPECT_EQ(p.resident(), 1u);
  EXPECT_EQ(p.evictions(), 2u);
  const auto mats = p.materializations();
  p.acquire(7);  // the highest seq survived
  EXPECT_EQ(p.materializations(), mats);
  p.release(7);
}

TEST(Population, DeferredReleaseRejectsSeqAboveDomainBase) {
  Population p(churn_spec(10), convex_factory());
  p.acquire(1);
  EXPECT_THROW(p.release(1, std::uint64_t{1} << 48), std::invalid_argument);
  p.release(1);
}

TEST(Population, ConcurrentDeferredReleasesMatchSerialEvictionExactly) {
  // The DESIGN.md §17 determinism claim: with releases parked under logical
  // seqs and eviction deferred to the trim barrier, the warm set, eviction
  // count, and materialization count after a concurrent phase equal the
  // serial run's regardless of thread interleaving.  Run under TSan via
  // `ctest -L ingest` (bench/run_ingest.sh).
  PopulationSpec spec = churn_spec(200);
  spec.max_resident = 4;

  struct Outcome {
    std::uint64_t materializations = 0;
    std::uint64_t evictions = 0;
    std::size_t resident = 0;
    std::vector<std::uint64_t> state;
  };
  // Three phases of 12 devices each, overlapping cohorts so warm hits and
  // revivals both occur.
  const std::vector<std::vector<std::uint64_t>> cohorts = {
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
      {6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17},
      {0, 1, 2, 3, 12, 13, 14, 15, 20, 21, 22, 23},
  };
  auto run_phases = [&](bool threaded) {
    Population p(spec, convex_factory());
    std::uint64_t seq = 0;
    for (const auto& cohort : cohorts) {
      if (threaded) {
        std::vector<std::thread> workers;
        workers.reserve(cohort.size());
        for (std::size_t i = 0; i < cohort.size(); ++i) {
          workers.emplace_back([&, i] {
            auto& c = p.acquire(cohort[i]);
            c.train_local(1, 1, 0.05f);
            p.release(cohort[i], seq + i);
          });
        }
        for (auto& w : workers) w.join();
      } else {
        for (std::size_t i = 0; i < cohort.size(); ++i) {
          auto& c = p.acquire(cohort[i]);
          c.train_local(1, 1, 0.05f);
          p.release(cohort[i], seq + i);
        }
      }
      seq += cohort.size();
      p.trim_warm();
    }
    Outcome o;
    o.materializations = p.materializations();
    o.evictions = p.evictions();
    o.resident = p.resident();
    o.state = p.state_words();
    return o;
  };

  const Outcome serial = run_phases(false);
  const Outcome threaded = run_phases(true);
  EXPECT_EQ(threaded.materializations, serial.materializations);
  EXPECT_EQ(threaded.evictions, serial.evictions);
  EXPECT_EQ(threaded.resident, serial.resident);
  // The full sparse device-state map — which devices stayed warm, which
  // spilled, and every spilled RNG stream — is interleaving-free.
  EXPECT_EQ(threaded.state, serial.state);
  EXPECT_GT(serial.evictions, 0u);
}

TEST(Population, PeakResidentTracksCohortNotPopulation) {
  // 100k virtual devices, cohorts of 16: memory-resident client state must
  // stay proportional to the cohort, never the population.
  PopulationSpec spec;
  spec.devices = 100000;
  spec.mean_on_fraction = 0.7;
  spec.max_resident = 16;
  spec.seed = 4;
  Population p(spec, convex_factory());
  util::Rng rng(11);
  for (std::uint64_t round = 1; round <= 5; ++round) {
    const auto cohort =
        p.sample(round, 16, Selection::kAvailabilityAware, rng);
    for (const auto d : cohort) p.acquire(d);
    for (const auto d : cohort) p.release(d);
  }
  EXPECT_LE(p.peak_resident(), 32u);
  EXPECT_GE(p.materializations(), 16u);
}

}  // namespace
}  // namespace cmfl::sched

#include "net/link.h"

#include <gtest/gtest.h>

#include <thread>

namespace cmfl::net {
namespace {

std::vector<std::byte> frame_of(std::uint8_t tag) {
  return {std::byte{tag}};
}

TEST(Channel, FifoOrder) {
  Channel ch;
  ch.send(frame_of(1));
  ch.send(frame_of(2));
  ch.send(frame_of(3));
  EXPECT_EQ((*ch.recv())[0], std::byte{1});
  EXPECT_EQ((*ch.recv())[0], std::byte{2});
  EXPECT_EQ((*ch.recv())[0], std::byte{3});
}

TEST(Channel, RecvBlocksUntilSend) {
  Channel ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(frame_of(9));
  });
  const auto frame = ch.recv();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)[0], std::byte{9});
  producer.join();
}

TEST(Channel, CloseDrainsThenReportsEnd) {
  Channel ch;
  ch.send(frame_of(1));
  ch.close();
  EXPECT_TRUE(ch.recv().has_value());
  EXPECT_FALSE(ch.recv().has_value());
  EXPECT_FALSE(ch.send(frame_of(2)));
}

TEST(Channel, ClosedButNonEmptyDeliversQueuedBeforeClosure) {
  // Regression for the close/drain edge: frames queued before close() must
  // all be delivered, and a send() after close() must not enqueue anything.
  Channel ch;
  ch.send(frame_of(1));
  ch.send(frame_of(2));
  ch.close();
  EXPECT_FALSE(ch.send(frame_of(3)));
  auto f1 = ch.recv();
  auto f2 = ch.recv();
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ((*f1)[0], std::byte{1});
  EXPECT_EQ((*f2)[0], std::byte{2});
  // If the rejected send had enqueued, this would return frame 3 instead
  // of reporting closure.
  EXPECT_FALSE(ch.recv().has_value());
  EXPECT_FALSE(ch.recv_for(std::chrono::milliseconds(1)).has_value());
}

TEST(Channel, RecvForTimesOutOnEmptyChannel) {
  Channel ch;
  EXPECT_FALSE(ch.recv_for(std::chrono::milliseconds(10)).has_value());
}

TEST(Channel, RecvForZeroTimeoutPolls) {
  Channel ch;
  EXPECT_FALSE(ch.recv_for(std::chrono::milliseconds(0)).has_value());
  ch.send(frame_of(7));
  const auto frame = ch.recv_for(std::chrono::milliseconds(0));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)[0], std::byte{7});
}

TEST(Channel, RecvForDeliversFrameArrivingWithinDeadline) {
  Channel ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(frame_of(9));
  });
  const auto frame = ch.recv_for(std::chrono::seconds(5));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)[0], std::byte{9});
  producer.join();
}

TEST(Channel, RecvForReportsClosureImmediately) {
  Channel ch;
  ch.close();
  // Must not wait out the timeout once closed and drained.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.recv_for(std::chrono::seconds(30)).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
}

TEST(Channel, RecvForNegativeTimeoutStillDrainsQueuedFrames) {
  // A replica that spent its whole tick budget handling frames calls
  // recv_for with an already-expired deadline; that must behave like a
  // poll, not an error and not a wait.
  Channel ch;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.recv_for(std::chrono::milliseconds(-50)).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(1));
  ch.send(frame_of(4));
  const auto frame = ch.recv_for(std::chrono::milliseconds(-50));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)[0], std::byte{4});
}

TEST(Channel, CloseDuringBlockedRecvForWakesTheWaiter) {
  // A worker blocked in recv_for must notice the master closing its inbox
  // right away, not after the full timeout.
  Channel ch;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.close();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.recv_for(std::chrono::seconds(30)).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
  closer.join();
}

TEST(Channel, FrameRacingTheDeadlineIsNeverDropped) {
  // send() and deadline expiry race repeatedly: whichever wins, the frame
  // must be delivered by this recv_for or the next poll — never lost.
  Channel ch;
  for (int i = 0; i < 50; ++i) {
    std::thread producer([&] { ch.send(frame_of(1)); });
    auto frame = ch.recv_for(std::chrono::microseconds(50));
    if (!frame.has_value()) {
      frame = ch.recv_for(std::chrono::milliseconds(0));
    }
    producer.join();
    if (!frame.has_value()) {
      frame = ch.recv_for(std::chrono::milliseconds(0));
    }
    ASSERT_TRUE(frame.has_value()) << "frame lost on iteration " << i;
    EXPECT_EQ((*frame)[0], std::byte{1});
  }
}

TEST(Channel, SendManyDeliversWholeBatchInOrder) {
  Channel ch;
  std::vector<std::vector<std::byte>> batch;
  batch.push_back(frame_of(1));
  batch.push_back(frame_of(2));
  batch.push_back(frame_of(3));
  EXPECT_TRUE(ch.send_many(std::move(batch)));
  EXPECT_EQ((*ch.recv())[0], std::byte{1});
  EXPECT_EQ((*ch.recv())[0], std::byte{2});
  EXPECT_EQ((*ch.recv())[0], std::byte{3});
  ch.close();
  std::vector<std::vector<std::byte>> late;
  late.push_back(frame_of(4));
  EXPECT_FALSE(ch.send_many(std::move(late)));
  EXPECT_FALSE(ch.recv().has_value());
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel ch;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch] {
      for (int i = 0; i < kPerProducer; ++i) ch.send(frame_of(1));
    });
  }
  int received = 0;
  while (received < kProducers * kPerProducer) {
    if (ch.recv()) ++received;
  }
  EXPECT_EQ(received, kProducers * kPerProducer);
  for (auto& t : producers) t.join();
}

TEST(ByteMeter, AccumulatesAcrossThreads) {
  ByteMeter meter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&meter] {
      for (int i = 0; i < 1000; ++i) meter.record(10);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(meter.total_bytes(), 40000u);
  EXPECT_EQ(meter.messages(), 4000u);
  EXPECT_EQ(meter.retransmitted_bytes(), 0u);
}

TEST(ByteMeter, RetransmitsCountTowardTotalsAndSeparately) {
  ByteMeter meter;
  meter.record(100);
  meter.record_retransmit(40);
  meter.record_retransmit(60);
  EXPECT_EQ(meter.total_bytes(), 200u);
  EXPECT_EQ(meter.messages(), 3u);
  EXPECT_EQ(meter.retransmitted_bytes(), 100u);
}

TEST(ByteMeter, RetransmitAccumulatesAcrossThreads) {
  ByteMeter meter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&meter] {
      for (int i = 0; i < 500; ++i) meter.record_retransmit(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(meter.total_bytes(), 6000u);
  EXPECT_EQ(meter.retransmitted_bytes(), 6000u);
  EXPECT_EQ(meter.messages(), 2000u);
}

TEST(LinkModel, TransferTime) {
  LinkModel link;
  link.latency_s = 0.1;
  link.bandwidth_bytes_per_s = 1000.0;
  EXPECT_DOUBLE_EQ(link.transfer_seconds(500), 0.1 + 0.5);
  EXPECT_DOUBLE_EQ(link.transfer_seconds(0), 0.1);
}

}  // namespace
}  // namespace cmfl::net

#include "net/link.h"

#include <gtest/gtest.h>

#include <thread>

namespace cmfl::net {
namespace {

std::vector<std::byte> frame_of(std::uint8_t tag) {
  return {std::byte{tag}};
}

TEST(Channel, FifoOrder) {
  Channel ch;
  ch.send(frame_of(1));
  ch.send(frame_of(2));
  ch.send(frame_of(3));
  EXPECT_EQ((*ch.recv())[0], std::byte{1});
  EXPECT_EQ((*ch.recv())[0], std::byte{2});
  EXPECT_EQ((*ch.recv())[0], std::byte{3});
}

TEST(Channel, RecvBlocksUntilSend) {
  Channel ch;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.send(frame_of(9));
  });
  const auto frame = ch.recv();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ((*frame)[0], std::byte{9});
  producer.join();
}

TEST(Channel, CloseDrainsThenReportsEnd) {
  Channel ch;
  ch.send(frame_of(1));
  ch.close();
  EXPECT_TRUE(ch.recv().has_value());
  EXPECT_FALSE(ch.recv().has_value());
  EXPECT_FALSE(ch.send(frame_of(2)));
}

TEST(Channel, ManyProducersOneConsumer) {
  Channel ch;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 100;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ch] {
      for (int i = 0; i < kPerProducer; ++i) ch.send(frame_of(1));
    });
  }
  int received = 0;
  while (received < kProducers * kPerProducer) {
    if (ch.recv()) ++received;
  }
  EXPECT_EQ(received, kProducers * kPerProducer);
  for (auto& t : producers) t.join();
}

TEST(ByteMeter, AccumulatesAcrossThreads) {
  ByteMeter meter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&meter] {
      for (int i = 0; i < 1000; ++i) meter.record(10);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(meter.total_bytes(), 40000u);
  EXPECT_EQ(meter.messages(), 4000u);
}

TEST(LinkModel, TransferTime) {
  LinkModel link;
  link.latency_s = 0.1;
  link.bandwidth_bytes_per_s = 1000.0;
  EXPECT_DOUBLE_EQ(link.transfer_seconds(500), 0.1 + 0.5);
  EXPECT_DOUBLE_EQ(link.transfer_seconds(0), 0.1);
}

}  // namespace
}  // namespace cmfl::net

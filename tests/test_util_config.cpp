#include "util/config.h"

#include <gtest/gtest.h>

namespace cmfl::util {
namespace {

Config parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Config::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(Config, ParsesKeyValuePairs) {
  const Config cfg = parse({"rounds=200", "lr=0.05", "name=cmfl"});
  EXPECT_EQ(cfg.get_int("rounds", 0), 200);
  EXPECT_DOUBLE_EQ(cfg.get_double("lr", 0.0), 0.05);
  EXPECT_EQ(cfg.get_string("name", ""), "cmfl");
}

TEST(Config, FallbacksUsedWhenAbsent) {
  const Config cfg = parse({});
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
}

TEST(Config, MalformedEntryRejected) {
  EXPECT_THROW(parse({"noequals"}), std::invalid_argument);
  EXPECT_THROW(parse({"=value"}), std::invalid_argument);
}

TEST(Config, BadTypesRejected) {
  const Config cfg = parse({"n=12x", "f=1.2.3", "b=maybe"});
  EXPECT_THROW(cfg.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(cfg.get_double("f", 0.0), std::invalid_argument);
  EXPECT_THROW(cfg.get_bool("b", false), std::invalid_argument);
}

TEST(Config, BoolSpellings) {
  const Config cfg = parse({"a=1", "b=true", "c=off", "d=no"});
  EXPECT_TRUE(cfg.get_bool("a", false));
  EXPECT_TRUE(cfg.get_bool("b", false));
  EXPECT_FALSE(cfg.get_bool("c", true));
  EXPECT_FALSE(cfg.get_bool("d", true));
}

TEST(Config, UnusedKeysReported) {
  const Config cfg = parse({"used=1", "typo=2"});
  EXPECT_EQ(cfg.get_int("used", 0), 1);
  const auto unused = cfg.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Config, Int64RoundTrip) {
  const Config cfg = parse({"big=9007199254740993"});
  EXPECT_EQ(cfg.get_int64("big", 0), 9007199254740993LL);
}

}  // namespace
}  // namespace cmfl::util

// LstmLm::predict and sequence-model behavioural tests.
#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/lstm_lm.h"
#include "util/rng.h"

namespace cmfl::nn {
namespace {

LstmLm small_model(std::uint64_t seed = 3) {
  LstmLmSpec spec;
  spec.vocab = 10;
  spec.embed_dim = 6;
  spec.hidden_dim = 8;
  LstmLm model(spec);
  util::Rng rng(seed);
  model.init_params(rng);
  return model;
}

SeqBatch batch_of(std::initializer_list<int> tokens, std::size_t seq_len) {
  SeqBatch b;
  b.tokens = tokens;
  b.seq_len = seq_len;
  b.batch = b.tokens.size() / seq_len;
  return b;
}

TEST(LstmLmPredict, ShapeAndDeterminism) {
  LstmLm model = small_model();
  const SeqBatch x = batch_of({1, 2, 3, 4, 5, 6}, 3);
  const tensor::Matrix a = model.predict(x);
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 10u);
  const tensor::Matrix b = model.predict(x);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.flat()[i], b.flat()[i]);
  }
}

TEST(LstmLmPredict, AgreesWithEvaluateAccuracy) {
  LstmLm model = small_model();
  const SeqBatch x = batch_of({0, 1, 2, 3, 7, 8, 9, 4}, 4);
  const auto top = argmax_rows(model.predict(x));
  std::vector<int> labels = {top[0], top[1]};
  EXPECT_DOUBLE_EQ(model.evaluate(x, labels).accuracy, 1.0);
  std::vector<int> wrong = {(top[0] + 1) % 10, (top[1] + 1) % 10};
  EXPECT_DOUBLE_EQ(model.evaluate(x, wrong).accuracy, 0.0);
}

TEST(LstmLmPredict, SequenceOrderMatters) {
  LstmLm model = small_model();
  const tensor::Matrix fwd = model.predict(batch_of({1, 2, 3, 4}, 4));
  const tensor::Matrix rev = model.predict(batch_of({4, 3, 2, 1}, 4));
  bool any_diff = false;
  for (std::size_t c = 0; c < fwd.cols(); ++c) {
    if (std::abs(fwd.at(0, c) - rev.at(0, c)) > 1e-6f) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(LstmLmPredict, TrainBatchChangesPrediction) {
  LstmLm model = small_model();
  const SeqBatch x = batch_of({5, 5, 5, 5}, 4);
  std::vector<int> y = {7};
  const double p_before = softmax(model.predict(x)).at(0, 7);
  for (int i = 0; i < 30; ++i) model.train_batch(x, y, 0.5f);
  const double p_after = softmax(model.predict(x)).at(0, 7);
  EXPECT_GT(p_after, p_before);
  EXPECT_GT(p_after, 0.8);
}

}  // namespace
}  // namespace cmfl::nn

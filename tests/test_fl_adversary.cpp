// Byzantine client wrappers: deterministic attack shapes, and the
// end-to-end defense experiment from ISSUE/DESIGN §10 — CMFL's relevance
// filter suppresses misbehaving clients on its own, server-side validation
// quarantines garbage senders, and robust aggregation bounds what survives.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/filter.h"
#include "fl/adversary.h"
#include "fl/convex_testbed.h"
#include "fl/robust_agg.h"
#include "fl/simulation.h"

namespace cmfl::fl {
namespace {

/// Minimal deterministic client: every training pass adds `lr` to every
/// parameter, so the honest update is exactly lr per coordinate.
class FakeClient final : public FlClient {
 public:
  explicit FakeClient(std::size_t dim) : params_(dim, 0.0f) {}
  std::size_t param_count() override { return params_.size(); }
  std::size_t local_samples() const override { return 1; }
  void set_params(std::span<const float> p) override {
    params_.assign(p.begin(), p.end());
  }
  void get_params(std::span<float> out) override {
    std::copy(params_.begin(), params_.end(), out.begin());
  }
  double train_local(int, std::size_t, float lr) override {
    for (auto& x : params_) x += lr;
    return 1.25;
  }

 private:
  std::vector<float> params_;
};

std::unique_ptr<ByzantineClient> wrap(Attack attack, std::uint64_t id = 0,
                                      double scale = 3.0) {
  AdversarySpec spec;
  spec.attack = attack;
  spec.scale = scale;
  return std::make_unique<ByzantineClient>(std::make_unique<FakeClient>(4),
                                           spec, id);
}

std::vector<float> one_round(ByzantineClient& client,
                             const std::vector<float>& broadcast,
                             float lr = 0.5f) {
  client.set_params(broadcast);
  client.train_local(1, 1, lr);
  std::vector<float> out(broadcast.size());
  client.get_params(out);
  return out;
}

const std::vector<float> kBroadcast = {1.0f, -2.0f, 3.0f, 0.5f};

TEST(Adversary, NamesRoundTrip) {
  for (const auto a : {Attack::kNone, Attack::kSignFlip, Attack::kScale,
                       Attack::kGarbage, Attack::kFreeRider,
                       Attack::kLabelFlip}) {
    EXPECT_EQ(parse_attack(attack_name(a)), a);
  }
  EXPECT_THROW(parse_attack("teleport"), std::invalid_argument);
}

TEST(Adversary, SignFlipNegatesTheUpdate) {
  auto client = wrap(Attack::kSignFlip);
  const auto out = one_round(*client, kBroadcast);
  // Honest update is +0.5 everywhere; the reported one must be -0.5.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i] - kBroadcast[i], -0.5f);
  }
}

TEST(Adversary, ScaleAmplifiesTheUpdate) {
  auto client = wrap(Attack::kScale, 0, 3.0);
  const auto out = one_round(*client, kBroadcast);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i] - kBroadcast[i], 3.0f * 0.5f);
  }
}

TEST(Adversary, FreeRiderEchoesTheBroadcast) {
  auto client = wrap(Attack::kFreeRider);
  client->set_params(kBroadcast);
  EXPECT_EQ(client->train_local(1, 1, 0.5f), 0.0);  // no local compute
  std::vector<float> out(kBroadcast.size());
  client->get_params(out);
  EXPECT_EQ(out, kBroadcast);
}

TEST(Adversary, LabelFlipTrainsWithNegatedRate) {
  auto client = wrap(Attack::kLabelFlip);
  const auto out = one_round(*client, kBroadcast);
  // Gradient ascent: the fake client adds -lr instead of +lr.
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i] - kBroadcast[i], -0.5f);
  }
}

TEST(Adversary, GarbageIsDeterministicPerSeedAndClient) {
  auto a = wrap(Attack::kGarbage, 7);
  auto b = wrap(Attack::kGarbage, 7);
  auto other = wrap(Attack::kGarbage, 8);
  const auto ua = one_round(*a, kBroadcast);
  const auto ub = one_round(*b, kBroadcast);
  const auto uo = one_round(*other, kBroadcast);
  for (std::size_t i = 0; i < ua.size(); ++i) {
    EXPECT_TRUE((std::isnan(ua[i]) && std::isnan(ub[i])) || ua[i] == ub[i]);
  }
  EXPECT_NE(ua, uo);  // different client id -> different stream
}

TEST(Adversary, MutableStateRestoresTheAttackStream) {
  auto client = wrap(Attack::kGarbage, 3);
  one_round(*client, kBroadcast);  // advance the stream
  const auto state = client->mutable_state();
  const auto next = one_round(*client, kBroadcast);
  client->restore_mutable_state(state);
  const auto replayed = one_round(*client, kBroadcast);
  for (std::size_t i = 0; i < next.size(); ++i) {
    EXPECT_TRUE((std::isnan(next[i]) && std::isnan(replayed[i])) ||
                next[i] == replayed[i]);
  }
}

TEST(Adversary, ApplyAdversariesWrapsCeilOfFraction) {
  std::vector<std::unique_ptr<FlClient>> clients;
  for (int i = 0; i < 10; ++i) clients.push_back(std::make_unique<FakeClient>(2));
  AdversarySpec spec;
  spec.attack = Attack::kSignFlip;
  EXPECT_EQ(apply_adversaries(clients, spec, 0.25), 3u);  // ceil(2.5)
  std::vector<std::unique_ptr<FlClient>> more;
  for (int i = 0; i < 10; ++i) more.push_back(std::make_unique<FakeClient>(2));
  EXPECT_EQ(apply_adversaries(more, spec, 0.0), 0u);
  EXPECT_THROW(apply_adversaries(more, spec, 1.5), std::invalid_argument);
}

// --- End-to-end defense experiment on the exact convex testbed ---

constexpr std::size_t kClients = 20;
constexpr double kAttackFraction = 0.4;  // 8 of 20 — well past the 20% bar
constexpr std::size_t kIterations = 10;

ConvexTestbedSpec experiment_spec() {
  ConvexTestbedSpec spec;
  spec.clients = kClients;
  spec.dim = 16;
  // Small spread: near x* the per-coordinate values of honest and sign-flip
  // updates become statistically similar, and order-statistic aggregators
  // inherit a center-offset bias that scales with spread².  A tight client
  // population keeps the defended runs near the attack-free optimum.
  spec.center_spread = 0.25;
  spec.outlier_fraction = 0.0;
  spec.gradient_noise = 0.05;
  spec.local_steps = 4;
  // Start far from x*: honest clients then share a dominant descent
  // direction, which is what CMFL's sign-relevance keys on.
  spec.start_offset = 3.0;
  spec.seed = 77;
  return spec;
}

SimulationResult run_experiment(Attack attack, double fraction,
                                Aggregation aggregation,
                                std::unique_ptr<core::UpdateFilter> filter,
                                const ValidationPolicy& validation,
                                double trim_fraction = 0.1) {
  ConvexWorkload w = make_convex_workload(experiment_spec());
  AdversarySpec adv;
  adv.attack = attack;
  adv.seed = 5;
  apply_adversaries(w.clients, adv, fraction);

  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 1;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = kIterations;
  opt.eval_every = 5;
  opt.aggregation = aggregation;
  opt.robust_aggregation.trim_fraction = trim_fraction;
  opt.validation = validation;
  FederatedSimulation sim(std::move(w.clients), std::move(filter),
                          w.evaluator, opt);
  return sim.run();
}

ValidationPolicy no_validation() {
  ValidationPolicy off;
  off.reject_nonfinite = false;
  off.quarantine_after = 0;
  return off;
}

TEST(AdversaryExperiment, SignFlipDegradesMeanButNotMedian) {
  const SimulationResult clean =
      run_experiment(Attack::kNone, 0.0, Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(), {});
  const SimulationResult attacked_mean =
      run_experiment(Attack::kSignFlip, kAttackFraction,
                     Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(), {});
  const SimulationResult attacked_median =
      run_experiment(Attack::kSignFlip, kAttackFraction, Aggregation::kMedian,
                     std::make_unique<core::AcceptAllFilter>(), {});

  // Vanilla mean demonstrably degrades under 40% sign-flip: the attackers
  // drag the average update towards -u and the run stalls far from x*
  // (measured ≈0.05 against a clean ≈0.98).
  EXPECT_GT(clean.final_accuracy, 0.9);
  EXPECT_LT(attacked_mean.final_accuracy, 0.3);
  // The coordinate-wise median recovers most of it (measured ≈0.64).  It
  // does not reach the clean optimum — with 40% attackers the order
  // statistic keeps a bias towards the attacker centroid — but it is a
  // multiple of the wrecked mean.
  EXPECT_GT(attacked_median.final_accuracy, 0.45);
  EXPECT_GT(attacked_median.final_accuracy,
            3.0 * attacked_mean.final_accuracy);
}

TEST(AdversaryExperiment, TrimmedMeanAlsoResistsSignFlip) {
  const SimulationResult clean =
      run_experiment(Attack::kNone, 0.0, Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(), {});
  // Trim 45% per side: enough to discard every attacker coordinate-wise
  // (40% of clients) while keeping a band of honest values.
  const SimulationResult trimmed =
      run_experiment(Attack::kSignFlip, kAttackFraction,
                     Aggregation::kTrimmedMean,
                     std::make_unique<core::AcceptAllFilter>(), {},
                     /*trim_fraction=*/0.45);
  const SimulationResult attacked_mean =
      run_experiment(Attack::kSignFlip, kAttackFraction,
                     Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(), {});
  // Measured ≈0.59 versus the wrecked mean's ≈0.05 (clean ≈0.98).
  EXPECT_GT(clean.final_accuracy, 0.9);
  EXPECT_GT(trimmed.final_accuracy, 0.45);
  EXPECT_GT(trimmed.final_accuracy, 3.0 * attacked_mean.final_accuracy);
}

TEST(AdversaryExperiment, CmflFilterAloneSuppressesSignFlip) {
  // The paper's §V-C claim, reproduced: the relevance filter screens out
  // updates that disagree with the estimated global direction — a sign-flip
  // attacker disagrees almost everywhere, so it eliminates itself at the
  // client side, with no robust aggregation at all.
  const SimulationResult clean =
      run_experiment(Attack::kNone, 0.0, Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(), {});
  const SimulationResult attacked_mean =
      run_experiment(Attack::kSignFlip, kAttackFraction,
                     Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(), {});
  const SimulationResult cmfl = run_experiment(
      Attack::kSignFlip, kAttackFraction, Aggregation::kUniformMean,
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.5)), {});

  // Measured ≈0.94 with the filter versus ≈0.05 without (clean ≈0.98).
  // Horizon matters: this holds in the descent phase (T=10).  Near
  // convergence honest relevance decays towards 0.5 and a *constant*
  // threshold starts eliminating honest clients too — the filter is a
  // communication optimisation that doubles as a defense, not a
  // general-horizon Byzantine aggregator.
  EXPECT_GT(cmfl.final_accuracy, clean.final_accuracy - 0.15);
  EXPECT_GT(cmfl.final_accuracy, 5.0 * attacked_mean.final_accuracy);

  // Attackers (ids 0..7) are eliminated far more often than honest clients
  // (measured 72 attacker vs 1 honest elimination over 10 iterations).
  const std::size_t attackers = static_cast<std::size_t>(
      std::ceil(kAttackFraction * static_cast<double>(kClients)));
  std::size_t attacker_elims = 0;
  std::size_t honest_elims = 0;
  for (std::size_t k = 0; k < kClients; ++k) {
    (k < attackers ? attacker_elims : honest_elims) +=
        cmfl.eliminations_per_client[k];
  }
  EXPECT_GT(attacker_elims, attackers * (kIterations / 2));
  EXPECT_LT(honest_elims, attacker_elims / 4);
}

TEST(AdversaryExperiment, GarbageSendersAreQuarantinedAndModelSurvives) {
  const SimulationResult clean =
      run_experiment(Attack::kNone, 0.0, Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(), {});
  // Default validation: non-finite rejection + quarantine after 3 strikes.
  const SimulationResult defended =
      run_experiment(Attack::kGarbage, kAttackFraction,
                     Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(), {});

  // Non-finite updates never reach the model.
  for (const float x : defended.final_params) EXPECT_TRUE(std::isfinite(x));
  // Measured ≈0.96 versus clean ≈0.98: after the attackers are quarantined
  // the run converges on the honest clients' own optimum, a small bias away
  // from the full-population x*.
  EXPECT_GT(defended.final_accuracy, clean.final_accuracy - 0.1);
  EXPECT_GT(defended.validation.rejected_nonfinite, 0u);
  // Every attacker ends the run quarantined, no honest client does.
  const std::size_t attackers = static_cast<std::size_t>(
      std::ceil(kAttackFraction * static_cast<double>(kClients)));
  EXPECT_EQ(defended.validation.quarantined_count(), attackers);
  for (std::size_t k = attackers; k < kClients; ++k) {
    EXPECT_EQ(defended.validation.quarantined[k], 0u);
  }
  // Rejected uploads are visible in the per-iteration records.
  std::size_t rejected = 0;
  for (const auto& rec : defended.history) rejected += rec.rejected;
  EXPECT_EQ(rejected, defended.validation.total_rejected());
}

TEST(AdversaryExperiment, UnvalidatedGarbageDestroysTheMeanModel) {
  // The negative control: with validation switched off, a single NaN
  // coordinate in one round poisons the uniform mean irreversibly.
  const SimulationResult wrecked =
      run_experiment(Attack::kGarbage, kAttackFraction,
                     Aggregation::kUniformMean,
                     std::make_unique<core::AcceptAllFilter>(),
                     no_validation());
  bool any_nonfinite = false;
  for (const float x : wrecked.final_params) {
    if (!std::isfinite(x)) any_nonfinite = true;
  }
  EXPECT_TRUE(any_nonfinite);
}

}  // namespace
}  // namespace cmfl::fl

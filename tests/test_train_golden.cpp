// Golden-trajectory pins for the training hot path.
//
// The PR-5 workspace/im2col refactor promises *bit-identical* training: the
// optimized layers must reproduce the exact float trajectory of the original
// per-step-allocating implementations.  These tests pin seeded end-to-end
// runs (digits MLP + CNN + NWP LSTM through FederatedSimulation, and a
// thread-pooled digits-MLP cohort through sched::RoundEngine) to CRC32
// digests recorded from the pre-refactor revision.  Any change to the
// floating-point accumulation order of forward/backward shows up here as a
// digest mismatch.
//
// Regenerate (only when a trajectory change is *intended* and explained):
//   CMFL_PRINT_GOLDEN=1 ./test_train_golden
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "core/filter.h"
#include "fl/simulation.h"
#include "fl/workloads.h"
#include "sched/population.h"
#include "sched/round_engine.h"
#include "tensor/kernels.h"
#include "util/crc32.h"

namespace cmfl::fl {
namespace {

// The CRC digests below pin the *exact* kernel tier (the golden reference
// trajectory).  The default tier is kAuto → kFast on AVX2 hosts, so force
// kExact for this whole file; the fast tier gets its own tolerance-gated
// trajectory test at the bottom (FastTierTrajectoryWithinTolerance).
const bool kForceExactTier = [] {
  tensor::kernels::set_tier(tensor::kernels::Tier::kExact);
  return true;
}();

std::uint32_t crc_floats(std::span<const float> v) {
  return util::crc32(std::as_bytes(v));
}

std::uint32_t crc_doubles(std::span<const double> v) {
  return util::crc32(std::as_bytes(v));
}

/// One digest over everything bit-sensitive in a run: final parameters,
/// per-iteration train losses, and the upload/elimination pattern (which
/// shifts if any relevance score moves by even one ulp).
std::uint32_t run_digest(const SimulationResult& r) {
  std::vector<double> scalars;
  for (const auto& rec : r.history) {
    scalars.push_back(rec.mean_train_loss);
    scalars.push_back(rec.mean_score);
    scalars.push_back(static_cast<double>(rec.uploads));
  }
  std::uint32_t crc = crc_floats(r.final_params);
  crc ^= crc_doubles(scalars);
  for (std::size_t e : r.eliminations_per_client) {
    crc = crc * 31u + static_cast<std::uint32_t>(e);
  }
  return crc;
}

bool print_golden() {
  return std::getenv("CMFL_PRINT_GOLDEN") != nullptr;
}

void check_or_print(const char* name, std::uint32_t got,
                    std::uint32_t expected) {
  if (print_golden()) {
    std::printf("GOLDEN %s = 0x%08xu\n", name, got);
    return;
  }
  EXPECT_EQ(got, expected) << name << ": trajectory digest changed — the "
                           << "training hot path is no longer bit-identical";
}

TEST(TrainGolden, DigitsMlpCmflTrace) {
  DigitsMlpSpec spec;
  spec.clients = 8;
  spec.train_samples = 240;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 77;
  Workload w = make_digits_mlp_workload(spec);

  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 4;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 5;
  opt.eval_every = 2;
  opt.seed = 99;
  FederatedSimulation sim(std::move(w.clients),
                          core::make_filter("cmfl", core::Schedule::constant(0.5)),
                          w.evaluator, opt);
  check_or_print("digits_mlp_cmfl", run_digest(sim.run()), 0xb81ed8d1u);
}

TEST(TrainGolden, DigitsCnnTrace) {
  DigitsCnnSpec spec;
  spec.clients = 4;
  spec.train_samples = 64;
  spec.test_samples = 32;
  spec.cnn.image_size = 8;
  spec.cnn.conv1_filters = 4;
  spec.cnn.conv2_filters = 8;
  spec.cnn.fc_width = 16;
  spec.digits.image_size = 8;
  spec.seed = 41;
  Workload w = make_digits_cnn_workload(spec);

  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 4;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 3;
  opt.eval_every = 1;
  opt.seed = 7;
  FederatedSimulation sim(std::move(w.clients),
                          core::make_filter("cmfl", core::Schedule::constant(0.5)),
                          w.evaluator, opt);
  check_or_print("digits_cnn_cmfl", run_digest(sim.run()), 0x1d43a834u);
}

TEST(TrainGolden, NwpLstmTrace) {
  NwpLstmSpec spec;
  spec.text.roles = 4;
  spec.text.words_per_role = 60;
  spec.text.seq_len = 6;
  spec.lm.embed_dim = 8;
  spec.lm.hidden_dim = 12;
  spec.lm.layers = 1;
  spec.seed = 13;
  Workload w = make_nwp_lstm_workload(spec);

  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 2;
  opt.learning_rate = core::Schedule::constant(0.5);
  opt.max_iterations = 3;
  opt.eval_every = 1;
  opt.seed = 5;
  FederatedSimulation sim(std::move(w.clients),
                          core::make_filter("cmfl", core::Schedule::constant(0.5)),
                          w.evaluator, opt);
  check_or_print("nwp_lstm_cmfl", run_digest(sim.run()), 0x0cf2e903u);
}

TEST(TrainGolden, RoundEngineMlpCohortTrace) {
  DigitsMlpSpec spec;
  spec.clients = 8;
  spec.train_samples = 240;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 77;
  PopulationWorkload w = make_digits_mlp_population(spec);

  sched::PopulationSpec pop_spec;
  pop_spec.devices = 8;
  pop_spec.seed = 3;
  sched::Population population(pop_spec, w.factory);

  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 4;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 4;
  opt.eval_every = 2;
  opt.seed = 21;
  opt.parallel = true;  // thread-pooled training must stay deterministic
  opt.schedule.sample_size = 4;
  sched::RoundEngine engine(
      population, core::make_filter("cmfl", core::Schedule::constant(0.5)),
      w.evaluator, opt);
  check_or_print("round_engine_mlp", run_digest(engine.run().sim), 0xe58bd81au);
}

// --- fast-tier trajectory tolerance (DESIGN.md §13) -------------------------

/// Runs the golden MLP configuration under the given tier.
SimulationResult run_mlp_under_tier(tensor::kernels::Tier t) {
  tensor::kernels::set_tier(t);
  DigitsMlpSpec spec;
  spec.clients = 8;
  spec.train_samples = 240;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 77;
  Workload w = make_digits_mlp_workload(spec);
  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 4;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 5;
  opt.eval_every = 2;
  opt.seed = 99;
  FederatedSimulation sim(
      std::move(w.clients),
      core::make_filter("cmfl", core::Schedule::constant(0.5)), w.evaluator,
      opt);
  SimulationResult r = sim.run();
  tensor::kernels::set_tier(tensor::kernels::Tier::kExact);
  return r;
}

/// Runs the golden CNN configuration (exercises the im2col / gemm_nn_acc
/// fast path end to end) under the given tier.
SimulationResult run_cnn_under_tier(tensor::kernels::Tier t) {
  tensor::kernels::set_tier(t);
  DigitsCnnSpec spec;
  spec.clients = 4;
  spec.train_samples = 64;
  spec.test_samples = 32;
  spec.cnn.image_size = 8;
  spec.cnn.conv1_filters = 4;
  spec.cnn.conv2_filters = 8;
  spec.cnn.fc_width = 16;
  spec.digits.image_size = 8;
  spec.seed = 41;
  Workload w = make_digits_cnn_workload(spec);
  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 4;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 3;
  opt.eval_every = 1;
  opt.seed = 7;
  FederatedSimulation sim(
      std::move(w.clients),
      core::make_filter("cmfl", core::Schedule::constant(0.5)), w.evaluator,
      opt);
  SimulationResult r = sim.run();
  tensor::kernels::set_tier(tensor::kernels::Tier::kExact);
  return r;
}

/// The documented fast-tier accuracy gate: the ULP-level per-kernel
/// differences (|fast − exact| ≤ 2·γ_k·Σ|a||b| per element) may compound
/// over a training run, but the *trajectory* must stay equivalent: same
/// convergence behaviour within loose, absolute tolerances.  DESIGN.md §13
/// documents these numbers as the fast-tier accuracy contract.
void expect_trajectory_equivalent(const SimulationResult& fast,
                                  const SimulationResult& exact) {
  ASSERT_EQ(fast.history.size(), exact.history.size());
  // Per-iteration mean train loss tracks within 5% relative (early
  // iterations are identical to ~6 decimal places; the bound is loose to
  // absorb compounding).
  for (std::size_t i = 0; i < fast.history.size(); ++i) {
    const double want = exact.history[i].mean_train_loss;
    const double got = fast.history[i].mean_train_loss;
    EXPECT_NEAR(got, want, 0.05 * std::max(1.0, std::fabs(want)))
        << "iteration " << i;
  }
  // Final evaluation accuracy within 5 points absolute.
  ASSERT_FALSE(fast.history.empty());
  double fast_acc = -1.0, exact_acc = -1.0;
  for (const auto& rec : fast.history) {
    if (rec.evaluated()) fast_acc = rec.accuracy;
  }
  for (const auto& rec : exact.history) {
    if (rec.evaluated()) exact_acc = rec.accuracy;
  }
  EXPECT_NEAR(fast_acc, exact_acc, 0.05);
  // Final parameters stay close in an L2 sense: the relative gap of the
  // whole parameter vector is far below the gradient-noise floor.
  ASSERT_EQ(fast.final_params.size(), exact.final_params.size());
  double diff2 = 0.0, norm2 = 0.0;
  for (std::size_t i = 0; i < fast.final_params.size(); ++i) {
    const double d = static_cast<double>(fast.final_params[i]) -
                     static_cast<double>(exact.final_params[i]);
    const double e = static_cast<double>(exact.final_params[i]);
    diff2 += d * d;
    norm2 += e * e;
  }
  EXPECT_LE(std::sqrt(diff2), 1e-2 * std::max(1.0, std::sqrt(norm2)));
}

TEST(TrainGoldenFastTier, MlpTrajectoryWithinTolerance) {
  if (!tensor::kernels::fast_tier_available()) {
    GTEST_SKIP() << "AVX2+FMA not available; fast tier untested";
  }
  SimulationResult exact = run_mlp_under_tier(tensor::kernels::Tier::kExact);
  SimulationResult fast = run_mlp_under_tier(tensor::kernels::Tier::kFast);
  expect_trajectory_equivalent(fast, exact);
}

TEST(TrainGoldenFastTier, CnnTrajectoryWithinTolerance) {
  if (!tensor::kernels::fast_tier_available()) {
    GTEST_SKIP() << "AVX2+FMA not available; fast tier untested";
  }
  SimulationResult exact = run_cnn_under_tier(tensor::kernels::Tier::kExact);
  SimulationResult fast = run_cnn_under_tier(tensor::kernels::Tier::kFast);
  expect_trajectory_equivalent(fast, exact);
}

}  // namespace
}  // namespace cmfl::fl

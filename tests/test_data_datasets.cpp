// Synthetic dataset generators: shape/validity invariants, class structure,
// learnability signals, non-IID properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "data/synth_digits.h"
#include "data/synth_har.h"
#include "data/synth_semeion.h"
#include "data/synth_text.h"

namespace cmfl::data {
namespace {

TEST(SynthDigits, ShapesAndRanges) {
  util::Rng rng(1);
  SynthDigitsSpec spec;
  spec.samples = 200;
  spec.image_size = 12;
  const DenseDataset ds = make_synth_digits(spec, rng);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.features(), 144u);
  for (float v : ds.x.flat()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  for (int y : ds.y) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(SynthDigits, AllClassesPresent) {
  util::Rng rng(2);
  SynthDigitsSpec spec;
  spec.samples = 500;
  const DenseDataset ds = make_synth_digits(spec, rng);
  std::set<int> classes(ds.y.begin(), ds.y.end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(SynthDigits, DeterministicForSeed) {
  SynthDigitsSpec spec;
  spec.samples = 50;
  util::Rng a(3), b(3);
  const DenseDataset da = make_synth_digits(spec, a);
  const DenseDataset db = make_synth_digits(spec, b);
  EXPECT_EQ(da.y, db.y);
  for (std::size_t i = 0; i < da.x.size(); ++i) {
    EXPECT_FLOAT_EQ(da.x.flat()[i], db.x.flat()[i]);
  }
}

TEST(SynthDigits, GlyphsAreDistinct) {
  // Clean glyphs of different digits must differ in enough pixels to be
  // learnable.
  std::vector<float> a(144), b(144);
  for (int d1 = 0; d1 < 10; ++d1) {
    for (int d2 = d1 + 1; d2 < 10; ++d2) {
      render_digit_glyph(d1, 12, a);
      render_digit_glyph(d2, 12, b);
      std::size_t diff = 0;
      for (std::size_t i = 0; i < a.size(); ++i) diff += a[i] != b[i];
      // The closest pair (5 vs 9) differs by one half-segment: 3 pixels at
      // this resolution.
      EXPECT_GE(diff, 3u) << "digits " << d1 << " vs " << d2;
    }
  }
}

TEST(SynthDigits, RendererValidation) {
  std::vector<float> buf(64);
  EXPECT_THROW(render_digit_glyph(10, 8, buf), std::invalid_argument);
  EXPECT_THROW(render_digit_glyph(-1, 8, buf), std::invalid_argument);
  EXPECT_THROW(render_digit_glyph(3, 4, buf), std::invalid_argument);
  std::vector<float> wrong(10);
  EXPECT_THROW(render_digit_glyph(3, 8, wrong), std::invalid_argument);
}

TEST(SynthDigits, SpecValidation) {
  util::Rng rng(4);
  SynthDigitsSpec spec;
  spec.samples = 0;
  EXPECT_THROW(make_synth_digits(spec, rng), std::invalid_argument);
  spec.samples = 10;
  spec.classes = 11;
  EXPECT_THROW(make_synth_digits(spec, rng), std::invalid_argument);
}

TEST(SynthText, CorpusShapeAndVocab) {
  util::Rng rng(5);
  SynthTextSpec spec;
  spec.roles = 10;
  spec.words_per_role = 60;
  spec.seq_len = 5;
  const RoleCorpus corpus = make_synth_text(spec, rng);
  EXPECT_EQ(corpus.windows_of_role.size(), 10u);
  EXPECT_EQ(corpus.dataset.vocab,
            spec.topics * spec.words_per_topic + spec.function_words);
  EXPECT_EQ(corpus.dataset.size(),
            10u * (spec.words_per_role - spec.seq_len - 1) + 10u);
  corpus.dataset.validate();
}

TEST(SynthText, RolesAreNonIid) {
  // Dominant-topic skew: different roles should have visibly different
  // token distributions.  Compare topic histograms of role 0 and role 1
  // (they have different dominant topics by construction).
  util::Rng rng(6);
  SynthTextSpec spec;
  spec.roles = 4;
  spec.words_per_role = 400;
  spec.topics = 4;
  const RoleCorpus corpus = make_synth_text(spec, rng);
  auto topic_histogram = [&](std::size_t role) {
    std::vector<double> hist(spec.topics, 0.0);
    const int topic_words =
        static_cast<int>(spec.topics * spec.words_per_topic);
    for (std::size_t w : corpus.windows_of_role[role]) {
      for (std::size_t t = 0; t < spec.seq_len; ++t) {
        const int tok = corpus.dataset.tokens[w * spec.seq_len + t];
        if (tok < topic_words) {
          ++hist[static_cast<std::size_t>(tok) / spec.words_per_topic];
        }
      }
    }
    double total = 0;
    for (double h : hist) total += h;
    for (double& h : hist) h /= total;
    return hist;
  };
  const auto h0 = topic_histogram(0);
  const auto h1 = topic_histogram(1);
  // Role 0's dominant topic is 0; role 1's is 1.
  EXPECT_GT(h0[0], h1[0]);
  EXPECT_GT(h1[1], h0[1]);
  double l1 = 0;
  for (std::size_t t = 0; t < spec.topics; ++t) l1 += std::abs(h0[t] - h1[t]);
  EXPECT_GT(l1, 0.3);  // strongly different distributions
}

TEST(SynthText, WindowsSliceTheStreamConsistently) {
  util::Rng rng(7);
  SynthTextSpec spec;
  spec.roles = 2;
  spec.words_per_role = 30;
  spec.seq_len = 4;
  const RoleCorpus corpus = make_synth_text(spec, rng);
  // Consecutive windows of a role overlap by seq_len-1 tokens.
  const auto& w = corpus.windows_of_role[0];
  for (std::size_t i = 0; i + 1 < w.size(); ++i) {
    for (std::size_t t = 1; t < spec.seq_len; ++t) {
      EXPECT_EQ(corpus.dataset.tokens[w[i] * spec.seq_len + t],
                corpus.dataset.tokens[w[i + 1] * spec.seq_len + t - 1]);
    }
    // The label of window i is the last token of window i+1's prefix.
    EXPECT_EQ(corpus.dataset.next_token[w[i]],
              corpus.dataset.tokens[w[i + 1] * spec.seq_len + spec.seq_len - 1]);
  }
}

TEST(SynthText, SpecValidation) {
  util::Rng rng(8);
  SynthTextSpec spec;
  spec.words_per_role = 4;
  spec.seq_len = 6;  // too long for the stream
  EXPECT_THROW(make_synth_text(spec, rng), std::invalid_argument);
}

TEST(SynthHar, ShapesAndPartition) {
  util::Rng rng(9);
  SynthHarSpec spec;
  spec.clients = 30;
  spec.features = 64;
  spec.min_samples = 10;
  spec.max_samples = 40;
  const HarData har = make_synth_har(spec, rng);
  EXPECT_EQ(har.partition.clients(), 30u);
  EXPECT_EQ(har.partition.total_samples(), har.dataset.size());
  EXPECT_EQ(har.is_outlier.size(), 30u);
  for (const auto& shard : har.partition.client_indices) {
    EXPECT_GE(shard.size(), 10u);
    EXPECT_LE(shard.size(), 40u);
  }
  for (int y : har.dataset.y) EXPECT_TRUE(y == 0 || y == 1);
}

TEST(SynthHar, HasBothOutliersAndNormals) {
  util::Rng rng(10);
  SynthHarSpec spec;
  spec.clients = 60;
  spec.features = 32;
  const HarData har = make_synth_har(spec, rng);
  const auto outliers = static_cast<std::size_t>(
      std::count(har.is_outlier.begin(), har.is_outlier.end(), true));
  EXPECT_GT(outliers, 0u);
  EXPECT_LT(outliers, 60u);
}

TEST(SynthHar, ClassesLinearlySeparableWithinNormalClient) {
  // Within a non-outlier client, the class prototypes dominate the noise on
  // the informative features in aggregate: the mean difference along the
  // informative block should be positive for class 1 vs class 0.
  util::Rng rng(11);
  SynthHarSpec spec;
  spec.clients = 10;
  spec.features = 64;
  spec.min_samples = 50;
  spec.max_samples = 100;
  spec.outlier_fraction = 0.0;
  const HarData har = make_synth_har(spec, rng);
  const std::size_t informative = std::max<std::size_t>(8, 64 / 8);
  double mean1 = 0, mean0 = 0;
  std::size_t n1 = 0, n0 = 0;
  for (std::size_t i = 0; i < har.dataset.size(); ++i) {
    double s = 0;
    for (std::size_t j = 0; j < informative; ++j) s += har.dataset.x.at(i, j);
    if (har.dataset.y[i] == 1) {
      mean1 += s;
      ++n1;
    } else {
      mean0 += s;
      ++n0;
    }
  }
  EXPECT_GT(mean1 / static_cast<double>(n1), mean0 / static_cast<double>(n0));
}

TEST(SynthSemeion, BinaryPixelsAndBothClasses) {
  util::Rng rng(12);
  SynthSemeionSpec spec;
  spec.samples = 400;
  const DenseDataset ds = make_synth_semeion(spec, rng);
  EXPECT_EQ(ds.features(), 256u);
  for (float v : ds.x.flat()) EXPECT_TRUE(v == 0.0f || v == 1.0f);
  const auto zeros = std::count(ds.y.begin(), ds.y.end(), 1);
  EXPECT_GT(zeros, 10);          // ~10% are the digit zero
  EXPECT_LT(zeros, 200);
}

}  // namespace
}  // namespace cmfl::data

// Exhaustive malformed-payload matrix over every codec decode path: every
// single-bit flip and every truncation of a valid payload must either throw
// loudly or decode to a well-formed vector of the size its (possibly
// corrupted) header claims — never crash, never over-allocate, never
// silently mis-size.  At the wire layer, every single-bit flip of a sealed
// CodecUpload frame is caught by the frame CRC before any decode runs.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "codec/codec.h"
#include "net/message.h"
#include "net/wire.h"
#include "util/rng.h"

namespace cmfl::codec {
namespace {

std::vector<float> random_update(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-0.5f, 0.5f);
  return v;
}

std::uint64_t claimed_dim(std::span<const std::byte> payload) {
  std::uint64_t dim = 0;
  std::memcpy(&dim, payload.data(), sizeof(dim));
  return dim;
}

/// The per-flip contract: decode either throws std::runtime_error or
/// returns a vector sized exactly as the (flipped) header claims.  The
/// kMaxDecodeDim guard makes the "returns" branch safe — no corrupted
/// header can drive a runaway allocation first.
void expect_loud_or_wellformed(UpdateCodec& codec,
                               std::span<const std::byte> payload,
                               const char* what) {
  try {
    const std::vector<float> out = codec.decode(payload);
    EXPECT_EQ(out.size(), claimed_dim(payload)) << what;
  } catch (const std::runtime_error&) {
    // Loud rejection is the other acceptable outcome.
  }
}

/// Decoders are handed out fresh per attempt so a stateful decoder (the
/// codebook cache) cannot be poisoned by one corrupted payload and change
/// the verdict on the next.
using DecoderFactory = std::unique_ptr<UpdateCodec> (*)();

void run_bit_flip_matrix(std::vector<std::byte> payload,
                         DecoderFactory make_decoder) {
  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      payload[byte] ^= std::byte{1} << bit;
      const auto what =
          "byte " + std::to_string(byte) + " bit " + std::to_string(bit);
      expect_loud_or_wellformed(*make_decoder(), payload, what.c_str());
      payload[byte] ^= std::byte{1} << bit;  // restore
    }
  }
}

void run_truncation_matrix(const std::vector<std::byte>& payload,
                           DecoderFactory make_decoder) {
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const std::span<const std::byte> prefix(payload.data(), len);
    EXPECT_THROW(make_decoder()->decode(prefix), std::runtime_error)
        << "truncated to " << len << " of " << payload.size() << " bytes";
  }
}

void run_trailing_byte_check(std::vector<std::byte> payload,
                             DecoderFactory make_decoder) {
  payload.push_back(std::byte{0});
  EXPECT_THROW(make_decoder()->decode(payload), std::runtime_error);
}

struct CodecCase {
  const char* spec;
  DecoderFactory make_decoder;
};

// One factory per spec: gtest matrices want stateless lambdas.
std::unique_ptr<UpdateCodec> dense() { return make_update_codec("dense", 1); }
std::unique_ptr<UpdateCodec> sign8() { return make_update_codec("sign:8", 1); }
std::unique_ptr<UpdateCodec> quant2() {
  return make_update_codec("quant:2", 1);
}
std::unique_ptr<UpdateCodec> quant8() {
  return make_update_codec("quant:8", 1);
}
std::unique_ptr<UpdateCodec> topk3() { return make_update_codec("topk:3", 1); }
std::unique_ptr<UpdateCodec> codebook() {
  return make_update_codec("codebook:4,2", 1);
}
std::unique_ptr<UpdateCodec> subsample() {
  return make_update_codec("subsample:0.5", 1);
}
std::unique_ptr<UpdateCodec> structured() {
  return make_update_codec("structured:0.5", 1);
}

const CodecCase kCases[] = {
    {"dense", dense},           {"sign:8", sign8},
    {"quant:2", quant2},        {"quant:8", quant8},
    {"topk:3", topk3},          {"codebook:4,2", codebook},
    {"subsample:0.5", subsample}, {"structured:0.5", structured},
};

std::vector<std::byte> valid_payload(const char* spec) {
  auto enc = make_update_codec(spec, 1)->encode(random_update(33, 1));
  return std::move(enc.payload);
}

TEST(CodecMalformed, EveryBitFlipThrowsOrStaysWellFormed) {
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.spec);
    run_bit_flip_matrix(valid_payload(c.spec), c.make_decoder);
  }
}

TEST(CodecMalformed, EveryTruncationThrows) {
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.spec);
    run_truncation_matrix(valid_payload(c.spec), c.make_decoder);
  }
}

TEST(CodecMalformed, TrailingBytesThrow) {
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.spec);
    run_trailing_byte_check(valid_payload(c.spec), c.make_decoder);
  }
}

TEST(CodecMalformed, EmptyPayloadThrows) {
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.spec);
    EXPECT_THROW(c.make_decoder()->decode({}), std::runtime_error);
  }
}

// The codebook's index-only payloads decode against a cached codebook; the
// matrix re-primes a fresh decoder with the refresh payload before every
// corrupted attempt so the cache itself is always clean.
TEST(CodecMalformed, CodebookIndexStreamMatrix) {
  CodebookCodec enc(4, 2);
  const auto u = random_update(33, 2);
  const auto refresh = enc.encode(u);
  auto index_only = enc.encode(u).payload;
  ASSERT_EQ(index_only[9], std::byte{0});

  auto primed = [&] {
    CodebookCodec d(4, 2);
    d.decode(refresh.payload);
    return d;
  };
  for (std::size_t byte = 0; byte < index_only.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      index_only[byte] ^= std::byte{1} << bit;
      auto d = primed();
      expect_loud_or_wellformed(
          d, index_only,
          ("byte " + std::to_string(byte) + " bit " + std::to_string(bit))
              .c_str());
      index_only[byte] ^= std::byte{1} << bit;
    }
  }
  for (std::size_t len = 0; len < index_only.size(); ++len) {
    auto d = primed();
    EXPECT_THROW(
        d.decode(std::span<const std::byte>(index_only.data(), len)),
        std::runtime_error)
        << "truncated to " << len;
  }
}

// ------------------------------------------------- targeted structural rot

TEST(CodecMalformed, QuantBadBitsFieldThrows) {
  auto payload = valid_payload("quant:8");
  payload[8] = std::byte{3};  // bits field: 3 is not a supported width
  EXPECT_THROW(quant8()->decode(payload), std::runtime_error);
}

TEST(CodecMalformed, QuantNonzeroPaddingBitsThrow) {
  QuantCodec c(2, 1);
  auto enc = c.encode(random_update(3, 3));  // 3 levels + 1 padding slot
  enc.payload.back() |= std::byte{0xC0};     // set the padding slot
  EXPECT_THROW(c.decode(enc.payload), std::runtime_error);
}

TEST(CodecMalformed, SignPaddingBitsBeyondDimensionThrow) {
  SignCodec c(8);
  auto enc = c.encode(random_update(10, 4));  // one sign word, 54 spare bits
  enc.payload.back() |= std::byte{0x80};      // bit 63 is beyond dim 10
  EXPECT_THROW(c.decode(enc.payload), std::runtime_error);
}

TEST(CodecMalformed, TopKNonCanonicalVarintThrows) {
  net::WireWriter w;
  w.u64(16);
  w.u64(1);
  w.u8(0x80);  // "0 with a continuation bit": non-canonical encoding of 0
  w.u8(0x00);
  w.f32(1.0f);
  EXPECT_THROW(topk3()->decode(w.take()), std::runtime_error);
}

TEST(CodecMalformed, TopKNonIncreasingIndexThrows) {
  net::WireWriter w;
  w.u64(16);
  w.u64(2);
  w.u8(5);  // index 5
  w.u8(0);  // delta 0: duplicate index
  w.f32(1.0f);
  w.f32(2.0f);
  EXPECT_THROW(topk3()->decode(w.take()), std::runtime_error);
}

TEST(CodecMalformed, TopKIndexOutOfRangeThrows) {
  net::WireWriter w;
  w.u64(4);
  w.u64(1);
  w.u8(10);  // index 10 >= dim 4
  w.f32(1.0f);
  EXPECT_THROW(topk3()->decode(w.take()), std::runtime_error);
}

TEST(CodecMalformed, DimensionHeaderBombsAreRefusedBeforeAllocating) {
  // A corrupted dimension header far beyond any real model must be rejected
  // up front, not discovered via a multi-gigabyte allocation.
  net::WireWriter w;
  w.u64(std::uint64_t{1} << 40);
  w.u64(1);
  w.u8(0);
  w.f32(1.0f);
  const auto frame = w.take();
  EXPECT_THROW(topk3()->decode(frame), std::runtime_error);

  net::WireWriter s;
  s.u64(std::uint64_t{1} << 40);
  s.u64(0);
  const auto sparse = s.take();
  EXPECT_THROW(subsample()->decode(sparse), std::runtime_error);
  EXPECT_THROW(structured()->decode(sparse), std::runtime_error);
}

TEST(CodecMalformed, SparseCountExceedingPayloadThrows) {
  net::WireWriter w;
  w.u64(8);
  w.u64(100);  // claims 100 pairs, carries none
  const auto frame = w.take();
  EXPECT_THROW(subsample()->decode(frame), std::runtime_error);
}

TEST(CodecMalformed, CodebookWiderThanIndexWidthThrows) {
  net::WireWriter w;
  w.u64(0);
  w.u8(1);  // 1-bit indices
  w.u8(1);  // has_codebook
  w.u8(2);  // k - 1 = 2 -> k = 3 > 2^1
  for (int j = 0; j < 3; ++j) w.f32(0.0f);
  EXPECT_THROW(codebook()->decode(w.take()), std::runtime_error);
}

// --------------------------------------------------------- wire-CRC layer

TEST(CodecMalformed, SealedFrameCatchesEveryBitFlip) {
  // The transit guarantee: a CodecUpload frame that picks up any single-bit
  // error on the wire is rejected by try_open_frame's CRC check, so the
  // codec decode path only ever sees payloads an endpoint actually sealed.
  net::CodecUploadMsg msg;
  msg.seq = 7;
  msg.iteration = 3;
  msg.client_id = 2;
  msg.score = 0.5;
  msg.codec_id = kCodecTopK;
  msg.codec_version = 1;
  msg.payload = make_update_codec("topk:3", 1)->encode(random_update(16, 5))
                    .payload;
  std::vector<std::byte> frame = net::encode(msg);
  net::seal_frame(frame);
  ASSERT_TRUE(net::try_open_frame(frame).has_value());

  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      frame[byte] ^= std::byte{1} << bit;
      EXPECT_FALSE(net::try_open_frame(frame).has_value())
          << "byte " << byte << " bit " << bit;
      frame[byte] ^= std::byte{1} << bit;
    }
  }
}

}  // namespace
}  // namespace cmfl::codec

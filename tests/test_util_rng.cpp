#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace cmfl::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIndexZeroReturnsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(17);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(5, 4), 5);  // inverted range clamps to lo
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(29);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.015);
}

TEST(Rng, CategoricalZeroTotalReturnsZero) {
  Rng rng(29);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.categorical(weights), 0u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(37);
  Rng c1 = parent.split(1);
  Rng parent2(37);
  Rng c1_again = parent2.split(1);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  // Different salts produce different streams.
  Rng c1b = parent.split(1);
  Rng c2b = parent.split(2);
  EXPECT_NE(c1b.next_u64(), c2b.next_u64());
}

TEST(SplitMix64, KnownFirstOutputIsStable) {
  SplitMix64 sm(0);
  const auto first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(first, sm2.next());
  EXPECT_NE(first, sm.next());
}

}  // namespace
}  // namespace cmfl::util

// End-to-end cluster emulation: the message-passing run must agree with the
// in-memory simulation and account bytes exactly.
#include <gtest/gtest.h>

#include "core/filter.h"
#include "fl/simulation.h"
#include "fl/workloads.h"
#include "net/cluster.h"

namespace cmfl::net {
namespace {

fl::DigitsMlpSpec small_spec() {
  fl::DigitsMlpSpec spec;
  spec.clients = 8;
  spec.train_samples = 240;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 5;
  return spec;
}

ClusterOptions fast_options() {
  ClusterOptions opt;
  opt.fl.local_epochs = 2;
  opt.fl.batch_size = 5;
  opt.fl.learning_rate = core::Schedule::constant(0.1);
  opt.fl.max_iterations = 12;
  opt.fl.eval_every = 4;
  return opt;
}

TEST(FlCluster, RunsAndAccountsMessages) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    fast_options());
  const ClusterResult r = cluster.run();
  // Vanilla: every worker answers every iteration with a full update.
  EXPECT_EQ(r.upload_messages, 8u * 12u);
  EXPECT_EQ(r.elimination_messages, 0u);
  EXPECT_EQ(r.sim.total_rounds, 8u * 12u);
  EXPECT_GT(r.uplink_bytes, 0u);
  EXPECT_GT(r.downlink_bytes, 0u);
  EXPECT_GT(r.simulated_transfer_seconds, 0.0);
  EXPECT_FALSE(r.footprint.empty());
}

TEST(FlCluster, UplinkBytesMatchFrameSizes) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  const std::size_t dim = w.param_count;
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    fast_options());
  const ClusterResult r = cluster.run();
  // Upload frame = 1 type + 8 iter + 4 client + 8 score + 8 len + 4*dim,
  // sealed with a 4-byte CRC.
  const std::size_t frame = 1 + 8 + 4 + 8 + 8 + 4 * dim + 4;
  EXPECT_EQ(r.uplink_bytes, r.upload_messages * frame);
}

TEST(FlCluster, CmflSendsEliminationFrames) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  FlCluster cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.5)),
      w.evaluator, fast_options());
  const ClusterResult r = cluster.run();
  EXPECT_GT(r.elimination_messages, 0u);
  EXPECT_EQ(r.upload_messages + r.elimination_messages, 8u * 12u);
  // Eliminations are counted per client.
  std::size_t counted = 0;
  for (std::size_t e : r.sim.eliminations_per_client) counted += e;
  EXPECT_EQ(counted, r.elimination_messages);
}

TEST(FlCluster, MatchesInMemorySimulation) {
  // Same workload, same filter, same options: the wire run and the
  // in-memory run must produce identical learning traces.
  auto opt = fast_options();
  fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
  FlCluster cluster(
      std::move(w1.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w1.evaluator, opt);
  const ClusterResult wire = cluster.run();

  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  fl::SimulationOptions sim_opt = opt.fl;
  fl::FederatedSimulation sim(
      std::move(w2.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w2.evaluator, sim_opt);
  const fl::SimulationResult mem = sim.run();

  ASSERT_EQ(wire.sim.history.size(), mem.history.size());
  for (std::size_t i = 0; i < mem.history.size(); ++i) {
    EXPECT_EQ(wire.sim.history[i].uploads, mem.history[i].uploads);
  }
  EXPECT_EQ(wire.sim.final_params, mem.final_params);
}

TEST(FlCluster, FootprintGrowsAcrossEvaluations) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    fast_options());
  const ClusterResult r = cluster.run();
  for (std::size_t i = 1; i < r.footprint.size(); ++i) {
    EXPECT_GT(r.footprint[i].uplink_bytes, r.footprint[i - 1].uplink_bytes);
    EXPECT_GT(r.footprint[i].iteration, r.footprint[i - 1].iteration);
  }
}

TEST(FlCluster, ConstructorValidation) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  EXPECT_THROW(FlCluster({}, std::make_unique<core::AcceptAllFilter>(),
                         w.evaluator, fast_options()),
               std::invalid_argument);
  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  EXPECT_THROW(
      FlCluster(std::move(w2.clients), nullptr, w2.evaluator, fast_options()),
      std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::net

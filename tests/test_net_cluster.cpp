// End-to-end cluster emulation: the message-passing run must agree with the
// in-memory simulation and account bytes exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/filter.h"
#include "fl/adversary.h"
#include "fl/checkpoint.h"
#include "fl/convex_testbed.h"
#include "fl/simulation.h"
#include "fl/workloads.h"
#include "net/cluster.h"

namespace cmfl::net {
namespace {

fl::DigitsMlpSpec small_spec() {
  fl::DigitsMlpSpec spec;
  spec.clients = 8;
  spec.train_samples = 240;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 5;
  return spec;
}

ClusterOptions fast_options() {
  ClusterOptions opt;
  opt.fl.local_epochs = 2;
  opt.fl.batch_size = 5;
  opt.fl.learning_rate = core::Schedule::constant(0.1);
  opt.fl.max_iterations = 12;
  opt.fl.eval_every = 4;
  return opt;
}

TEST(FlCluster, RunsAndAccountsMessages) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    fast_options());
  const ClusterResult r = cluster.run();
  // Vanilla: every worker answers every iteration with a full update.
  EXPECT_EQ(r.upload_messages, 8u * 12u);
  EXPECT_EQ(r.elimination_messages, 0u);
  EXPECT_EQ(r.sim.total_rounds, 8u * 12u);
  EXPECT_GT(r.uplink_bytes, 0u);
  EXPECT_GT(r.downlink_bytes, 0u);
  EXPECT_GT(r.simulated_transfer_seconds, 0.0);
  EXPECT_FALSE(r.footprint.empty());
}

TEST(FlCluster, UplinkBytesMatchFrameSizes) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  const std::size_t dim = w.param_count;
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    fast_options());
  const ClusterResult r = cluster.run();
  // Upload frame = 1 type + 4 seq + 8 iter + 4 client + 8 score + 8 len +
  // 4*dim, sealed with a 4-byte CRC.
  const std::size_t frame = 1 + 4 + 8 + 4 + 8 + 8 + 4 * dim + 4;
  EXPECT_EQ(r.uplink_bytes, r.upload_messages * frame);
}

TEST(FlCluster, CmflSendsEliminationFrames) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  FlCluster cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.5)),
      w.evaluator, fast_options());
  const ClusterResult r = cluster.run();
  EXPECT_GT(r.elimination_messages, 0u);
  EXPECT_EQ(r.upload_messages + r.elimination_messages, 8u * 12u);
  // Eliminations are counted per client.
  std::size_t counted = 0;
  for (std::size_t e : r.sim.eliminations_per_client) counted += e;
  EXPECT_EQ(counted, r.elimination_messages);
}

TEST(FlCluster, MatchesInMemorySimulation) {
  // Same workload, same filter, same options: the wire run and the
  // in-memory run must produce identical learning traces.
  auto opt = fast_options();
  fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
  FlCluster cluster(
      std::move(w1.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w1.evaluator, opt);
  const ClusterResult wire = cluster.run();

  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  fl::SimulationOptions sim_opt = opt.fl;
  fl::FederatedSimulation sim(
      std::move(w2.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w2.evaluator, sim_opt);
  const fl::SimulationResult mem = sim.run();

  ASSERT_EQ(wire.sim.history.size(), mem.history.size());
  for (std::size_t i = 0; i < mem.history.size(); ++i) {
    EXPECT_EQ(wire.sim.history[i].uploads, mem.history[i].uploads);
  }
  EXPECT_EQ(wire.sim.final_params, mem.final_params);
}

TEST(FlCluster, ShardedIngestMatchesSingleMasterAndMetersPerShard) {
  // Sharding the upload pipeline must not change a single byte of the
  // trajectory or the wire accounting; it only adds per-shard meters.
  auto run_with = [](std::size_t shards) {
    auto opt = fast_options();
    opt.fl.sharding.shards = shards;
    fl::Workload w = fl::make_digits_mlp_workload(small_spec());
    FlCluster cluster(
        std::move(w.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w.evaluator, opt);
    return cluster.run();
  };
  const ClusterResult single = run_with(0);
  EXPECT_TRUE(single.shard_uplink_bytes.empty());
  EXPECT_TRUE(single.shard_uploads.empty());

  for (const std::size_t s : {1u, 4u}) {
    SCOPED_TRACE("shards " + std::to_string(s));
    const ClusterResult sharded = run_with(s);
    EXPECT_EQ(sharded.sim.final_params, single.sim.final_params);
    EXPECT_EQ(sharded.uplink_bytes, single.uplink_bytes);
    EXPECT_EQ(sharded.upload_messages, single.upload_messages);
    EXPECT_EQ(sharded.elimination_messages, single.elimination_messages);
    ASSERT_EQ(sharded.shard_uplink_bytes.size(), s);
    ASSERT_EQ(sharded.shard_uploads.size(), s);
    // Every accepted upload landed on exactly one shard; the per-shard
    // meters partition the upload wire bytes (eliminations are tiny status
    // frames and never enter the ingest pipeline).
    std::uint64_t uploads = 0;
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < s; ++i) {
      uploads += sharded.shard_uploads[i];
      bytes += sharded.shard_uplink_bytes[i];
    }
    EXPECT_EQ(uploads, sharded.upload_messages);
    EXPECT_GT(bytes, 0u);
    EXPECT_LE(bytes, sharded.uplink_bytes);
  }
}

TEST(FlCluster, ShardingRejectsReplicatedControlPlane) {
  auto opt = fast_options();
  opt.fl.sharding.shards = 2;
  opt.replication.replicas = 3;
  opt.recovery.round_timeout_s = 1.0;
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  EXPECT_THROW(FlCluster(std::move(w.clients),
                         std::make_unique<core::AcceptAllFilter>(),
                         w.evaluator, opt),
               std::invalid_argument);
}

TEST(FlCluster, FootprintGrowsAcrossEvaluations) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    fast_options());
  const ClusterResult r = cluster.run();
  for (std::size_t i = 1; i < r.footprint.size(); ++i) {
    EXPECT_GT(r.footprint[i].uplink_bytes, r.footprint[i - 1].uplink_bytes);
    EXPECT_GT(r.footprint[i].iteration, r.footprint[i - 1].iteration);
  }
}

TEST(FlCluster, ConstructorValidation) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  EXPECT_THROW(FlCluster({}, std::make_unique<core::AcceptAllFilter>(),
                         w.evaluator, fast_options()),
               std::invalid_argument);
  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  EXPECT_THROW(
      FlCluster(std::move(w2.clients), nullptr, w2.evaluator, fast_options()),
      std::invalid_argument);
}

TEST(FlCluster, RecoveryOptionValidation) {
  auto make = [](const ClusterOptions& opt) {
    fl::ConvexTestbedSpec spec;
    spec.clients = 4;
    spec.dim = 4;
    fl::ConvexWorkload w = fl::make_convex_workload(spec);
    FlCluster cluster(std::move(w.clients),
                      std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                      opt);
  };
  // Fault injection without a deadline would hang forever on the first
  // dropped frame; the constructor must refuse it.
  {
    auto opt = fast_options();
    opt.fault.uplink.drop_prob = 0.1;
    EXPECT_THROW(make(opt), std::invalid_argument);
    opt.recovery.round_timeout_s = 0.2;
    EXPECT_NO_THROW(make(opt));
  }
  {
    auto opt = fast_options();
    opt.recovery.quorum = 0.0;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.recovery.quorum = 1.5;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.recovery.max_attempts = 0;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.recovery.backoff = 0.5;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.recovery.round_timeout_s = -1.0;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
  {
    auto opt = fast_options();
    opt.fault.crash_at_iteration[9] = 1;  // worker id out of range
    opt.recovery.round_timeout_s = 0.2;
    EXPECT_THROW(make(opt), std::invalid_argument);
  }
}

ClusterOptions faulty_options() {
  auto opt = fast_options();
  opt.fl.max_iterations = 8;
  opt.fault.seed = 99;
  opt.fault.downlink = LinkFaults{.drop_prob = 0.15, .corrupt_prob = 0.05,
                                  .duplicate_prob = 0.05};
  opt.fault.uplink = LinkFaults{.drop_prob = 0.15, .corrupt_prob = 0.05,
                                .duplicate_prob = 0.05};
  opt.recovery.round_timeout_s = 0.15;
  opt.recovery.backoff = 1.5;
  opt.recovery.max_attempts = 10;
  opt.recovery.quorum = 1.0;
  return opt;
}

TEST(FlCluster, FaultyRunMatchesFaultFreeAtFullQuorum) {
  // The central invariant: with faults injected but recovery enabled and
  // quorum 1.0, every round still commits with every worker's (exactly
  // once trained) reply, so the learning trajectory is bit-identical to
  // the fault-free run.  Only the byte/retransmit accounting may differ.
  auto clean_opt = fast_options();
  clean_opt.fl.max_iterations = 8;
  fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
  FlCluster clean_cluster(
      std::move(w1.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w1.evaluator, clean_opt);
  const ClusterResult clean = clean_cluster.run();

  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  FlCluster faulty_cluster(
      std::move(w2.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w2.evaluator, faulty_options());
  const ClusterResult faulty = faulty_cluster.run();

  // Identical learning trajectory...
  ASSERT_EQ(faulty.sim.history.size(), clean.sim.history.size());
  for (std::size_t i = 0; i < clean.sim.history.size(); ++i) {
    EXPECT_EQ(faulty.sim.history[i].uploads, clean.sim.history[i].uploads);
    EXPECT_EQ(faulty.sim.history[i].participants,
              clean.sim.history[i].participants);
    EXPECT_DOUBLE_EQ(faulty.sim.history[i].mean_score,
                     clean.sim.history[i].mean_score);
    if (clean.sim.history[i].evaluated()) {
      EXPECT_DOUBLE_EQ(faulty.sim.history[i].accuracy,
                       clean.sim.history[i].accuracy);
    }
  }
  EXPECT_EQ(faulty.sim.final_params, clean.sim.final_params);
  EXPECT_EQ(faulty.sim.eliminations_per_client,
            clean.sim.eliminations_per_client);
  EXPECT_EQ(faulty.upload_messages, clean.upload_messages);
  EXPECT_EQ(faulty.elimination_messages, clean.elimination_messages);
  EXPECT_TRUE(faulty.faults.crashed_workers.empty());

  // ...while the fault layer demonstrably did its worst.
  EXPECT_GT(faulty.faults.frames_dropped, 0u);
  EXPECT_GT(faulty.faults.frames_corrupted, 0u);
  EXPECT_GT(faulty.faults.frames_duplicated, 0u);
  EXPECT_GT(faulty.faults.corrupt_rejected, 0u);
  EXPECT_GT(faulty.faults.retransmits, 0u);
  EXPECT_GT(faulty.faults.timed_out_rounds, 0u);
  EXPECT_GT(faulty.downlink_retransmitted_bytes +
                faulty.uplink_retransmitted_bytes,
            0u);
  EXPECT_EQ(clean.faults.retransmits, 0u);
  EXPECT_EQ(clean.downlink_retransmitted_bytes, 0u);
  EXPECT_EQ(clean.uplink_retransmitted_bytes, 0u);
  // Retransmitted bytes flow through the same meters as originals.
  EXPECT_GT(faulty.downlink_bytes + faulty.uplink_bytes,
            clean.downlink_bytes + clean.uplink_bytes);
}

TEST(FlCluster, SeededFaultRunIsReproducible) {
  auto run_once = [] {
    fl::Workload w = fl::make_digits_mlp_workload(small_spec());
    FlCluster cluster(
        std::move(w.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w.evaluator, faulty_options());
    return cluster.run();
  };
  const ClusterResult a = run_once();
  const ClusterResult b = run_once();
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.sim.final_params, b.sim.final_params);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.downlink_bytes, b.downlink_bytes);
  EXPECT_EQ(a.uplink_retransmitted_bytes, b.uplink_retransmitted_bytes);
  EXPECT_EQ(a.downlink_retransmitted_bytes, b.downlink_retransmitted_bytes);
  EXPECT_EQ(a.upload_messages, b.upload_messages);
  EXPECT_EQ(a.elimination_messages, b.elimination_messages);
}

TEST(FlCluster, QuorumCommitsRoundsPastAPersistentStraggler) {
  fl::ConvexTestbedSpec spec;
  spec.clients = 4;
  spec.dim = 8;
  spec.local_steps = 3;
  spec.gradient_noise = 0.02;
  fl::ConvexWorkload w = fl::make_convex_workload(spec);

  ClusterOptions opt;
  opt.fl.local_epochs = 1;
  opt.fl.batch_size = 1;
  opt.fl.learning_rate = core::Schedule::constant(0.1);
  opt.fl.max_iterations = 4;
  opt.fl.eval_every = 2;
  // Worker 3 always sleeps far past the deadline; quorum 0.5 lets the
  // other three commit each round without it.
  opt.fault.straggler_delay_s[3] = 0.3;
  opt.recovery.round_timeout_s = 0.1;
  opt.recovery.quorum = 0.5;
  opt.recovery.max_attempts = 30;  // never exhaust: stragglers are not dead
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    opt);
  const ClusterResult r = cluster.run();

  EXPECT_EQ(r.faults.quorum_rounds, 4u);
  EXPECT_EQ(r.faults.timed_out_rounds, 4u);
  EXPECT_TRUE(r.faults.crashed_workers.empty());
  // The straggler misses every round; the fast workers miss none.
  EXPECT_GE(r.faults.max_staleness_per_client[3], 1u);
  EXPECT_EQ(r.faults.max_staleness_per_client[0], 0u);
  EXPECT_EQ(r.faults.max_staleness_per_client[1], 0u);
  EXPECT_EQ(r.faults.max_staleness_per_client[2], 0u);
  for (const auto& rec : r.sim.history) {
    EXPECT_EQ(rec.participants, 3u);
  }
}

TEST(FlCluster, FirstKReportsCommitsWithoutWaitingForStragglers) {
  // Over-selection on the live cluster: with first_k_reports = 3 of 4
  // workers and one worker consistently slow, every round commits on the
  // three fast replies — no deadline expiry needed — and the slow worker's
  // late uploads never count.
  fl::ConvexTestbedSpec spec;
  spec.clients = 4;
  spec.dim = 8;
  spec.local_steps = 3;
  spec.gradient_noise = 0.02;
  fl::ConvexWorkload w = fl::make_convex_workload(spec);

  ClusterOptions opt;
  opt.fl.local_epochs = 1;
  opt.fl.batch_size = 1;
  opt.fl.learning_rate = core::Schedule::constant(0.1);
  opt.fl.max_iterations = 4;
  opt.fl.eval_every = 2;
  opt.fault.straggler_delay_s[3] = 0.3;
  // Timeout generous enough that the straggler would make it: only the
  // first-K rule can be what commits the round early.
  opt.recovery.round_timeout_s = 2.0;
  opt.recovery.first_k_reports = 3;
  opt.recovery.max_attempts = 30;
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    opt);
  const ClusterResult r = cluster.run();

  EXPECT_EQ(r.faults.over_select_commits, 4u);
  EXPECT_EQ(r.faults.quorum_rounds, 0u);
  ASSERT_EQ(r.sim.history.size(), 4u);
  for (const auto& rec : r.sim.history) {
    EXPECT_EQ(rec.participants, 3u);
  }
  // Per-client upload counters ride in the result: the fast workers
  // answered every round, the straggler's replies all arrived post-commit.
  ASSERT_EQ(r.sim.uploads_per_client.size(), 4u);
  EXPECT_EQ(r.sim.uploads_per_client[0], 4u);
  EXPECT_EQ(r.sim.uploads_per_client[1], 4u);
  EXPECT_EQ(r.sim.uploads_per_client[2], 4u);
  EXPECT_EQ(r.sim.uploads_per_client[3], 0u);
  // Byte-valued Φ: the result carries what had crossed the uplink by the
  // last commit (straggler frames still in flight land in the meter only).
  EXPECT_GT(r.sim.uploaded_bytes, 0u);
  EXPECT_EQ(r.sim.uploaded_bytes, r.sim.history.back().cumulative_upload_bytes);
  EXPECT_LE(r.sim.uploaded_bytes, r.uplink_bytes);
  EXPECT_EQ(r.faults.timed_out_rounds, 0u);
}

TEST(FlCluster, CrashStopWorkersAreDetectedAndExcluded) {
  // Satellite: k of n workers die mid-run; with quorum 0.5 plus staleness
  // suspicion the cluster keeps training on the survivors and still ends
  // near the optimum of the convex testbed.
  fl::ConvexTestbedSpec spec;
  spec.clients = 12;
  spec.dim = 8;
  spec.center_spread = 0.5;
  spec.outlier_fraction = 0.0;
  spec.gradient_noise = 0.02;
  spec.local_steps = 3;

  ClusterOptions opt;
  opt.fl.local_epochs = 1;
  opt.fl.batch_size = 1;
  opt.fl.learning_rate = core::Schedule::constant(0.2);
  opt.fl.max_iterations = 20;
  opt.fl.eval_every = 5;

  // Fault-free baseline for the accuracy target.
  fl::ConvexWorkload w_clean = fl::make_convex_workload(spec);
  FlCluster clean_cluster(
      std::move(w_clean.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.3)),
      w_clean.evaluator, opt);
  const ClusterResult clean = clean_cluster.run();

  const std::uint64_t crash_iter = 4;
  opt.fault.crash_at_iteration[2] = crash_iter;
  opt.fault.crash_at_iteration[5] = crash_iter;
  opt.fault.crash_at_iteration[9] = crash_iter;
  opt.recovery.round_timeout_s = 0.15;
  opt.recovery.quorum = 0.5;
  opt.recovery.max_attempts = 4;
  opt.recovery.suspect_after_stale_rounds = 2;

  fl::ConvexWorkload w = fl::make_convex_workload(spec);
  FlCluster cluster(
      std::move(w.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.3)),
      w.evaluator, opt);
  const ClusterResult r = cluster.run();

  // All three crashed workers are declared dead, and nobody else is.
  std::vector<std::uint32_t> crashed = r.faults.crashed_workers;
  std::sort(crashed.begin(), crashed.end());
  EXPECT_EQ(crashed, (std::vector<std::uint32_t>{2, 5, 9}));

  // CMFL elimination accounting excludes dead clients: they can only have
  // been eliminated in the rounds they actually participated in.
  for (const std::uint32_t k : {2u, 5u, 9u}) {
    EXPECT_LE(r.sim.eliminations_per_client[k], crash_iter - 1);
  }
  EXPECT_GE(r.faults.max_staleness_per_client[2], 2u);

  // The survivors still drive the model to (near) the fault-free target.
  EXPECT_GT(r.sim.final_accuracy, 0.0);
  EXPECT_GE(r.sim.final_accuracy, clean.sim.final_accuracy - 0.15);
}

TEST(FlCluster, QuarantinesAGarbageWorker) {
  // Worker 0 uploads garbage (noise laced with NaN/inf).  The master's
  // validator must reject every such update, quarantine the worker after
  // the default three strikes, and stop broadcasting to it — while the
  // surviving workers keep the model finite.
  fl::ConvexTestbedSpec spec;
  spec.clients = 4;
  spec.dim = 8;
  spec.outlier_fraction = 0.0;
  spec.gradient_noise = 0.02;
  spec.local_steps = 3;
  fl::ConvexWorkload w = fl::make_convex_workload(spec);

  fl::AdversarySpec adv;
  adv.attack = fl::Attack::kGarbage;
  adv.seed = 17;
  w.clients[0] = std::make_unique<fl::ByzantineClient>(
      std::move(w.clients[0]), adv, 0);

  ClusterOptions opt;
  opt.fl.local_epochs = 1;
  opt.fl.batch_size = 1;
  opt.fl.learning_rate = core::Schedule::constant(0.1);
  opt.fl.max_iterations = 8;
  opt.fl.eval_every = 4;
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    opt);
  const ClusterResult r = cluster.run();

  EXPECT_EQ(r.sim.validation.quarantined_count(), 1u);
  EXPECT_EQ(r.sim.validation.quarantined[0], 1u);
  EXPECT_GT(r.sim.validation.rejected_nonfinite, 0u);
  for (float p : r.sim.final_params) ASSERT_TRUE(std::isfinite(p));
  EXPECT_GT(r.sim.final_accuracy, 0.0);

  std::size_t rejected = 0;
  for (const auto& rec : r.sim.history) {
    rejected += rec.rejected;
    // Once quarantined, worker 0 is no longer broadcast to: late rounds run
    // with three participants.
    if (rec.iteration > 4) EXPECT_EQ(rec.participants, 3u);
  }
  EXPECT_EQ(rejected, r.sim.validation.total_rejected());
  EXPECT_GT(rejected, 0u);
}

TEST(FlCluster, CheckpointResumeIsBitIdentical) {
  // Kill the cluster after iteration 4, rebuild workload + cluster from
  // scratch, resume from the checkpoint file: trajectory, byte accounting,
  // and footprint curve all match the uninterrupted run exactly.
  const std::string ref_path = ::testing::TempDir() + "cluster_ck_ref.bin";
  const std::string path = ::testing::TempDir() + "cluster_ck.bin";
  std::remove(ref_path.c_str());
  std::remove(path.c_str());

  auto opt = fast_options();  // 12 iterations, eval_every 4
  opt.fl.checkpoint_every = 4;
  opt.fl.checkpoint_path = ref_path;

  fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
  FlCluster ref_cluster(
      std::move(w1.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w1.evaluator, opt);
  const ClusterResult uninterrupted = ref_cluster.run();

  {
    auto first_half = opt;
    first_half.fl.max_iterations = 4;
    first_half.fl.checkpoint_path = path;
    fl::Workload w = fl::make_digits_mlp_workload(small_spec());
    FlCluster cluster(
        std::move(w.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w.evaluator, first_half);
    cluster.run();
  }  // master and workers torn down here

  const fl::TrainerCheckpoint ck = fl::load_checkpoint_file(path);
  EXPECT_EQ(ck.iteration, 4u);
  auto resume_opt = opt;
  resume_opt.fl.checkpoint_path = path;
  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  FlCluster resumed_cluster(
      std::move(w2.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w2.evaluator, resume_opt);
  const ClusterResult resumed = resumed_cluster.resume(ck);

  EXPECT_EQ(resumed.sim.final_params, uninterrupted.sim.final_params);
  ASSERT_EQ(resumed.sim.history.size(), uninterrupted.sim.history.size());
  for (std::size_t i = 0; i < uninterrupted.sim.history.size(); ++i) {
    EXPECT_TRUE(fl::bitwise_equal(resumed.sim.history[i],
                                  uninterrupted.sim.history[i]))
        << "iteration record " << i;
  }
  EXPECT_EQ(resumed.sim.eliminations_per_client,
            uninterrupted.sim.eliminations_per_client);
  EXPECT_EQ(resumed.sim.total_rounds, uninterrupted.sim.total_rounds);
  EXPECT_EQ(resumed.sim.uploaded_bytes, uninterrupted.sim.uploaded_bytes);
  EXPECT_EQ(resumed.uplink_bytes, uninterrupted.uplink_bytes);
  EXPECT_EQ(resumed.downlink_bytes, uninterrupted.downlink_bytes);
  EXPECT_EQ(resumed.upload_messages, uninterrupted.upload_messages);
  EXPECT_EQ(resumed.elimination_messages,
            uninterrupted.elimination_messages);
  EXPECT_EQ(resumed.simulated_transfer_seconds,
            uninterrupted.simulated_transfer_seconds);
  ASSERT_EQ(resumed.footprint.size(), uninterrupted.footprint.size());
  for (std::size_t i = 0; i < uninterrupted.footprint.size(); ++i) {
    EXPECT_EQ(resumed.footprint[i].iteration,
              uninterrupted.footprint[i].iteration);
    EXPECT_EQ(resumed.footprint[i].accuracy,
              uninterrupted.footprint[i].accuracy);
    EXPECT_EQ(resumed.footprint[i].uplink_bytes,
              uninterrupted.footprint[i].uplink_bytes);
  }
  std::remove(ref_path.c_str());
  std::remove(path.c_str());
}

TEST(FlCluster, SignCodecUplinkIsOneBitPerCoordinatePlusHeader) {
  // The headline acceptance shape: with the sign codec negotiated, every
  // upload frame carries ~dim/8 payload bytes instead of 4*dim, and the
  // ByteMeter records exactly those encoded frames.
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  const std::size_t dim = w.param_count;
  auto opt = fast_options();
  opt.fl.codec.spec = "sign";
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    opt);
  const ClusterResult r = cluster.run();

  // CodecUpload frame = 1 type + 4 seq + 8 iter + 4 client + 8 score +
  // 1 codec_id + 1 codec_version + 8 len + payload, sealed with 4 CRC.
  const std::size_t payload = 8 + 4 + 4 * ((dim + 255) / 256) +
                              8 * ((dim + 63) / 64);
  const std::size_t frame = 35 + payload + 4;
  EXPECT_EQ(r.upload_messages, 8u * 12u);
  EXPECT_EQ(r.uplink_bytes, r.upload_messages * frame);
  // ~32x smaller than the dense frame the vanilla path would have sent.
  const std::size_t dense_frame = 1 + 4 + 8 + 4 + 8 + 8 + 4 * dim + 4;
  EXPECT_LT(frame, dense_frame / 8);
}

TEST(FlCluster, EveryCodecMatchesTheInMemorySimulation) {
  // Same workload, same filter, same codec: the socket run and the
  // in-memory simulation must agree exactly — encode on the worker, a real
  // CRC-sealed frame across the channel, decode on the master, and still
  // the identical learning trace.  Covers all four production codecs,
  // including the stateful-decode codebook (legal on a single master).
  for (const char* spec :
       {"sign", "quant:8", "topk:0.05", "codebook:8,4"}) {
    SCOPED_TRACE(spec);
    auto opt = fast_options();
    opt.fl.codec.spec = spec;

    fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
    FlCluster cluster(
        std::move(w1.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w1.evaluator, opt);
    const ClusterResult wire = cluster.run();

    fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
    fl::FederatedSimulation sim(
        std::move(w2.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w2.evaluator, opt.fl);
    const fl::SimulationResult mem = sim.run();

    ASSERT_EQ(wire.sim.history.size(), mem.history.size());
    for (std::size_t i = 0; i < mem.history.size(); ++i) {
      EXPECT_EQ(wire.sim.history[i].uploads, mem.history[i].uploads);
    }
    EXPECT_EQ(wire.sim.final_params, mem.final_params);
  }
}

TEST(FlCluster, CodecRunSurvivesFaultInjectionUnchanged) {
  // The encode-once discipline under fire: the quant codec's rounding RNG
  // advances exactly once per trained round, so dropped/corrupted/duplicated
  // frames and retransmissions (which resend the cached encoded reply) must
  // leave the trajectory bit-identical to the fault-free codec run.
  auto clean_opt = fast_options();
  clean_opt.fl.max_iterations = 8;
  clean_opt.fl.codec.spec = "quant:8";
  fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
  FlCluster clean_cluster(
      std::move(w1.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w1.evaluator, clean_opt);
  const ClusterResult clean = clean_cluster.run();

  auto opt = faulty_options();
  opt.fl.codec.spec = "quant:8";
  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  FlCluster faulty_cluster(
      std::move(w2.clients),
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      w2.evaluator, opt);
  const ClusterResult faulty = faulty_cluster.run();

  EXPECT_EQ(faulty.sim.final_params, clean.sim.final_params);
  EXPECT_EQ(faulty.upload_messages, clean.upload_messages);
  EXPECT_GT(faulty.faults.frames_dropped, 0u);
  EXPECT_GT(faulty.faults.retransmits, 0u);
}

TEST(FlCluster, CodecCheckpointResumeIsBitIdentical) {
  // Kill-and-resume with stateful codecs: the top-k error-feedback residual
  // and the quant RNG stream ride in the checkpoint, so the resumed run
  // reproduces the uninterrupted one bit for bit — trajectory and encoded
  // byte accounting alike.
  for (const char* spec : {"topk:0.05", "quant:4"}) {
    SCOPED_TRACE(spec);
    const std::string ref_path = ::testing::TempDir() + "codec_ck_ref.bin";
    const std::string path = ::testing::TempDir() + "codec_ck.bin";
    std::remove(ref_path.c_str());
    std::remove(path.c_str());

    auto opt = fast_options();  // 12 iterations, eval_every 4
    opt.fl.codec.spec = spec;
    opt.fl.checkpoint_every = 4;
    opt.fl.checkpoint_path = ref_path;

    fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
    FlCluster ref_cluster(
        std::move(w1.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w1.evaluator, opt);
    const ClusterResult uninterrupted = ref_cluster.run();

    {
      auto first_half = opt;
      first_half.fl.max_iterations = 4;
      first_half.fl.checkpoint_path = path;
      fl::Workload w = fl::make_digits_mlp_workload(small_spec());
      FlCluster cluster(
          std::move(w.clients),
          std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
          w.evaluator, first_half);
      cluster.run();
    }

    const fl::TrainerCheckpoint ck = fl::load_checkpoint_file(path);
    EXPECT_EQ(ck.iteration, 4u);
    // The codec streams were captured: one state blob per worker.
    ASSERT_EQ(ck.compressor_state.size(), 8u);
    auto resume_opt = opt;
    resume_opt.fl.checkpoint_path = path;
    fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
    FlCluster resumed_cluster(
        std::move(w2.clients),
        std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
        w2.evaluator, resume_opt);
    const ClusterResult resumed = resumed_cluster.resume(ck);

    EXPECT_EQ(resumed.sim.final_params, uninterrupted.sim.final_params);
    EXPECT_EQ(resumed.uplink_bytes, uninterrupted.uplink_bytes);
    EXPECT_EQ(resumed.upload_messages, uninterrupted.upload_messages);
    EXPECT_EQ(resumed.elimination_messages,
              uninterrupted.elimination_messages);
    std::remove(ref_path.c_str());
    std::remove(path.c_str());
  }
}

TEST(FlCluster, RejectsUnknownCodecSpec) {
  fl::Workload w = fl::make_digits_mlp_workload(small_spec());
  auto opt = fast_options();
  opt.fl.codec.spec = "zstd";
  EXPECT_THROW(FlCluster(std::move(w.clients),
                         std::make_unique<core::AcceptAllFilter>(),
                         w.evaluator, opt),
               std::invalid_argument);
}

TEST(FlCluster, BackoffJitterIsValidatedAndOffByDefault) {
  // Negative jitter is nonsense; zero (the default) must leave the
  // retransmit schedule — and therefore every byte counter — exactly
  // deterministic, which SeededFaultRunIsReproducible relies on.
  {
    fl::ConvexTestbedSpec spec;
    spec.clients = 4;
    spec.dim = 4;
    fl::ConvexWorkload w = fl::make_convex_workload(spec);
    auto opt = fast_options();
    opt.recovery.backoff_jitter = -0.1;
    EXPECT_THROW(FlCluster(std::move(w.clients),
                           std::make_unique<core::AcceptAllFilter>(),
                           w.evaluator, opt),
                 std::invalid_argument);
  }
  // Regression: at jitter = 0 two identically-seeded faulty runs agree on
  // every byte counter, not just the trajectory.
  auto opt = faulty_options();
  ASSERT_EQ(opt.recovery.backoff_jitter, 0.0);
  fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
  FlCluster c1(std::move(w1.clients),
               std::make_unique<core::AcceptAllFilter>(), w1.evaluator, opt);
  const ClusterResult a = c1.run();
  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  FlCluster c2(std::move(w2.clients),
               std::make_unique<core::AcceptAllFilter>(), w2.evaluator, opt);
  const ClusterResult b = c2.run();
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.uplink_bytes, b.uplink_bytes);
  EXPECT_EQ(a.downlink_bytes, b.downlink_bytes);
  EXPECT_EQ(a.uplink_retransmitted_bytes, b.uplink_retransmitted_bytes);
  EXPECT_EQ(a.downlink_retransmitted_bytes, b.downlink_retransmitted_bytes);
}

TEST(FlCluster, BackoffJitterChangesTimingButNotTheTrajectory) {
  // Jitter desynchronizes retransmit deadlines (the thundering-herd fix);
  // at quorum 1.0 it must not change what the master learns.
  auto opt = faulty_options();
  fl::Workload w1 = fl::make_digits_mlp_workload(small_spec());
  FlCluster c1(std::move(w1.clients),
               std::make_unique<core::AcceptAllFilter>(), w1.evaluator, opt);
  const ClusterResult plain = c1.run();

  opt.recovery.backoff_jitter = 0.5;
  fl::Workload w2 = fl::make_digits_mlp_workload(small_spec());
  FlCluster c2(std::move(w2.clients),
               std::make_unique<core::AcceptAllFilter>(), w2.evaluator, opt);
  const ClusterResult jittered = c2.run();

  // Same learning trajectory (byte meters may differ: retransmit timing
  // is exactly what jitter perturbs).
  ASSERT_EQ(jittered.sim.history.size(), plain.sim.history.size());
  for (std::size_t i = 0; i < plain.sim.history.size(); ++i) {
    EXPECT_EQ(jittered.sim.history[i].uploads, plain.sim.history[i].uploads);
    EXPECT_EQ(jittered.sim.history[i].participants,
              plain.sim.history[i].participants);
    EXPECT_DOUBLE_EQ(jittered.sim.history[i].mean_score,
                     plain.sim.history[i].mean_score);
  }
  EXPECT_EQ(jittered.sim.final_params, plain.sim.final_params);
  EXPECT_EQ(jittered.sim.eliminations_per_client,
            plain.sim.eliminations_per_client);
  EXPECT_EQ(jittered.upload_messages, plain.upload_messages);
  EXPECT_EQ(jittered.elimination_messages, plain.elimination_messages);
}

TEST(FlCluster, LostOverSelectRacesAreNotCrashEvidence) {
  // Footgun regression: combining first_k_reports with staleness suspicion
  // used to declare a merely-slow worker dead — losing the over-selection
  // race every round looked identical to blowing every deadline.  Only
  // rounds that time out (not rounds the fast K committed early) may feed
  // the suspicion counter.
  fl::ConvexTestbedSpec spec;
  spec.clients = 4;
  spec.dim = 8;
  spec.local_steps = 3;
  spec.gradient_noise = 0.02;
  fl::ConvexWorkload w = fl::make_convex_workload(spec);

  ClusterOptions opt;
  opt.fl.local_epochs = 1;
  opt.fl.batch_size = 1;
  opt.fl.learning_rate = core::Schedule::constant(0.1);
  opt.fl.max_iterations = 4;
  opt.fl.eval_every = 2;
  opt.fault.straggler_delay_s[3] = 0.3;
  // Generous deadline: the straggler never actually times out, it only
  // keeps losing first-K races.
  opt.recovery.round_timeout_s = 2.0;
  opt.recovery.first_k_reports = 3;
  opt.recovery.suspect_after_stale_rounds = 1;  // hair trigger
  opt.recovery.max_attempts = 30;
  FlCluster cluster(std::move(w.clients),
                    std::make_unique<core::AcceptAllFilter>(), w.evaluator,
                    opt);
  const ClusterResult r = cluster.run();

  EXPECT_TRUE(r.faults.crashed_workers.empty());
  EXPECT_EQ(r.faults.over_select_commits, 4u);
  EXPECT_EQ(r.faults.timed_out_rounds, 0u);
  // The slow worker stays invited (alive) through the whole run.
  for (const auto& rec : r.sim.history) {
    EXPECT_EQ(rec.participants, 3u);
  }
  EXPECT_GE(r.faults.max_staleness_per_client[3], 1u);
}

}  // namespace
}  // namespace cmfl::net

#include "core/filter.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace cmfl::core {
namespace {

FilterContext make_ctx(std::span<const float> model,
                       std::span<const float> global_update,
                       std::size_t iteration = 1) {
  FilterContext ctx;
  ctx.global_model = model;
  ctx.estimated_global_update = global_update;
  ctx.iteration = iteration;
  return ctx;
}

TEST(AcceptAllFilter, AlwaysUploads) {
  AcceptAllFilter filter;
  std::vector<float> u = {0.0f, 0.0f};
  std::vector<float> m = {1.0f, 1.0f};
  const auto d = filter.decide(u, make_ctx(m, u));
  EXPECT_TRUE(d.upload);
  EXPECT_EQ(filter.name(), "vanilla");
}

TEST(GaiaFilter, UploadsAboveThreshold) {
  GaiaFilter filter(Schedule::constant(0.5));
  std::vector<float> model = {6.0f, 8.0f};  // norm 10
  std::vector<float> big = {3.0f, 4.0f};    // ratio 0.5 -> upload (>=)
  std::vector<float> small = {0.3f, 0.4f};  // ratio 0.05 -> drop
  std::vector<float> gu(2, 0.0f);
  EXPECT_TRUE(filter.decide(big, make_ctx(model, gu)).upload);
  EXPECT_FALSE(filter.decide(small, make_ctx(model, gu)).upload);
}

TEST(GaiaFilter, ScoreIsNormRatio) {
  GaiaFilter filter(Schedule::constant(0.1));
  std::vector<float> model = {3.0f, 4.0f};
  std::vector<float> update = {0.6f, 0.8f};
  std::vector<float> gu(2, 0.0f);
  const auto d = filter.decide(update, make_ctx(model, gu));
  EXPECT_NEAR(d.score, 0.2, 1e-7);
  EXPECT_DOUBLE_EQ(d.threshold, 0.1);
}

TEST(CmflFilter, ColdStartAcceptsEverything) {
  CmflFilter filter(Schedule::constant(0.99));
  std::vector<float> u = {-1.0f, -1.0f};
  std::vector<float> model = {1.0f, 1.0f};
  std::vector<float> zero_gu = {0.0f, 0.0f};
  const auto d = filter.decide(u, make_ctx(model, zero_gu));
  EXPECT_TRUE(d.upload);
  EXPECT_DOUBLE_EQ(d.score, 1.0);
}

TEST(CmflFilter, FiltersMisalignedUpdate) {
  CmflFilter filter(Schedule::constant(0.6));
  std::vector<float> model = {1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<float> gu = {1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<float> aligned = {2.0f, 3.0f, 0.1f, 9.0f};    // e = 1.0
  std::vector<float> opposed = {-2.0f, -3.0f, -0.1f, 9.0f}; // e = 0.25
  EXPECT_TRUE(filter.decide(aligned, make_ctx(model, gu)).upload);
  EXPECT_FALSE(filter.decide(opposed, make_ctx(model, gu)).upload);
}

TEST(CmflFilter, ThresholdBoundaryIsInclusive) {
  CmflFilter filter(Schedule::constant(0.5));
  std::vector<float> model = {1.0f, 1.0f};
  std::vector<float> gu = {1.0f, 1.0f};
  std::vector<float> half = {1.0f, -1.0f};  // e = 0.5 -> upload (>=)
  EXPECT_TRUE(filter.decide(half, make_ctx(model, gu)).upload);
}

TEST(CmflFilter, DecayingThresholdAcceptsMoreOverTime) {
  CmflFilter filter(Schedule::inv_sqrt(0.8));
  std::vector<float> model = {1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<float> gu = {1.0f, 1.0f, 1.0f, 1.0f};
  std::vector<float> u = {1.0f, 1.0f, -1.0f, -1.0f};  // e = 0.5
  EXPECT_FALSE(filter.decide(u, make_ctx(model, gu, 1)).upload);   // v=0.8
  EXPECT_TRUE(filter.decide(u, make_ctx(model, gu, 4)).upload);    // v=0.4
}

// Monotonicity in the threshold: if an update passes at threshold v, it
// passes at every v' < v.
class FilterMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(FilterMonotoneTest, LowerThresholdNeverRejectsAcceptedUpdate) {
  const double v = GetParam();
  util::Rng rng(7);
  std::vector<float> model(64), gu(64), u(64);
  for (auto& x : model) x = rng.uniform_f(-1.0f, 1.0f);
  for (auto& x : gu) x = rng.uniform_f(-1.0f, 1.0f);
  for (auto& x : u) x = rng.uniform_f(-1.0f, 1.0f);
  CmflFilter high(Schedule::constant(v));
  CmflFilter low(Schedule::constant(v / 2.0));
  const auto ctx = make_ctx(model, gu);
  if (high.decide(u, ctx).upload) {
    EXPECT_TRUE(low.decide(u, ctx).upload);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FilterMonotoneTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

TEST(MakeFilter, FactoryDispatch) {
  const Schedule s = Schedule::constant(0.5);
  EXPECT_EQ(make_filter("vanilla", s)->name(), "vanilla");
  EXPECT_EQ(make_filter("gaia", s)->name(), "gaia");
  EXPECT_EQ(make_filter("cmfl", s)->name(), "cmfl");
  EXPECT_THROW(make_filter("nope", s), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::core

#include "net/fault.h"

#include <gtest/gtest.h>

#include "net/message.h"
#include "net/wire.h"

namespace cmfl::net {
namespace {

std::vector<std::byte> sealed_frame(std::uint32_t seq) {
  auto frame = encode(Message(EliminationMsg{seq, 1, 0, 0.5}));
  seal_frame(frame);
  return frame;
}

TEST(FaultPlan, DisabledByDefault) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.validate(4);
}

TEST(FaultPlan, EnabledByAnyConfiguredFault) {
  {
    FaultPlan p;
    p.uplink.drop_prob = 0.1;
    EXPECT_TRUE(p.enabled());
  }
  {
    FaultPlan p;
    p.downlink_overrides[2].corrupt_prob = 0.5;
    EXPECT_TRUE(p.enabled());
  }
  {
    FaultPlan p;
    p.straggler_delay_s[1] = 0.2;
    EXPECT_TRUE(p.enabled());
  }
  {
    FaultPlan p;
    p.crash_at_iteration[0] = 3;
    EXPECT_TRUE(p.enabled());
  }
}

TEST(FaultPlan, OverridesShadowDefaults) {
  FaultPlan plan;
  plan.uplink.drop_prob = 0.1;
  plan.uplink_overrides[2] = LinkFaults{.drop_prob = 0.9};
  EXPECT_DOUBLE_EQ(plan.uplink_for(0).drop_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.uplink_for(2).drop_prob, 0.9);
  EXPECT_DOUBLE_EQ(plan.downlink_for(2).drop_prob, 0.0);
  EXPECT_DOUBLE_EQ(plan.straggler_delay_for(5), 0.0);
  EXPECT_FALSE(plan.crash_iteration_for(5).has_value());
  plan.crash_at_iteration[5] = 7;
  ASSERT_TRUE(plan.crash_iteration_for(5).has_value());
  EXPECT_EQ(*plan.crash_iteration_for(5), 7u);
}

TEST(FaultPlan, ValidateRejectsMalformedPlans) {
  {
    FaultPlan p;
    p.uplink.drop_prob = 1.5;
    EXPECT_THROW(p.validate(4), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.downlink.corrupt_prob = -0.1;
    EXPECT_THROW(p.validate(4), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.uplink_overrides[9].duplicate_prob = 0.5;  // worker out of range
    EXPECT_THROW(p.validate(4), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.straggler_delay_s[1] = -0.5;
    EXPECT_THROW(p.validate(4), std::invalid_argument);
  }
  {
    FaultPlan p;
    p.crash_at_iteration[4] = 1;  // worker out of range for 4 workers
    EXPECT_THROW(p.validate(4), std::invalid_argument);
  }
}

TEST(FaultPlan, LinkRngStreamsAreDeterministicAndIndependent) {
  FaultPlan a, b;
  a.seed = b.seed = 77;
  auto r1 = a.link_rng(3, true);
  auto r2 = b.link_rng(3, true);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(r1.next_u64(), r2.next_u64());
  // A different link (other direction, other worker) gets a distinct stream.
  auto up = a.link_rng(3, true);
  auto down = a.link_rng(3, false);
  auto other = a.link_rng(4, true);
  bool up_vs_down_differ = false, up_vs_other_differ = false;
  for (int i = 0; i < 64; ++i) {
    const auto u = up.next_u64();
    if (u != down.next_u64()) up_vs_down_differ = true;
    if (u != other.next_u64()) up_vs_other_differ = true;
  }
  EXPECT_TRUE(up_vs_down_differ);
  EXPECT_TRUE(up_vs_other_differ);
}

TEST(FaultyChannel, DropAllDeliversNothingButSendSucceeds) {
  Channel ch;
  FaultStats stats;
  FaultPlan plan;
  FaultyChannel faulty(ch, LinkFaults{.drop_prob = 1.0}, plan.link_rng(0, true),
                       &stats);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(faulty.send(sealed_frame(i)));
  }
  EXPECT_FALSE(ch.recv_for(std::chrono::milliseconds(0)).has_value());
  EXPECT_EQ(stats.frames_dropped.load(), 5u);
  EXPECT_EQ(stats.frames_corrupted.load(), 0u);
  EXPECT_EQ(stats.frames_duplicated.load(), 0u);
}

TEST(FaultyChannel, CorruptAllFlipsExactlyOneBitAndCrcCatchesIt) {
  Channel ch;
  FaultStats stats;
  FaultPlan plan;
  FaultyChannel faulty(ch, LinkFaults{.corrupt_prob = 1.0},
                       plan.link_rng(0, true), &stats);
  const auto original = sealed_frame(42);
  ASSERT_TRUE(faulty.send(original));
  const auto delivered = ch.recv();
  ASSERT_TRUE(delivered.has_value());
  ASSERT_EQ(delivered->size(), original.size());
  int differing_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    auto diff =
        static_cast<unsigned>((*delivered)[i] ^ original[i]) & 0xFFu;
    while (diff != 0) {
      differing_bits += static_cast<int>(diff & 1u);
      diff >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);
  // The corruption travels through the real CRC path.
  EXPECT_FALSE(try_open_frame(*delivered).has_value());
  EXPECT_TRUE(try_open_frame(original).has_value());
  EXPECT_EQ(stats.frames_corrupted.load(), 1u);
}

TEST(FaultyChannel, DuplicateAllDeliversTwoIdenticalCopies) {
  Channel ch;
  FaultStats stats;
  FaultPlan plan;
  FaultyChannel faulty(ch, LinkFaults{.duplicate_prob = 1.0},
                       plan.link_rng(0, true), &stats);
  const auto original = sealed_frame(7);
  ASSERT_TRUE(faulty.send(original));
  const auto first = ch.recv_for(std::chrono::milliseconds(0));
  const auto second = ch.recv_for(std::chrono::milliseconds(0));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, original);
  EXPECT_EQ(*second, original);
  EXPECT_FALSE(ch.recv_for(std::chrono::milliseconds(0)).has_value());
  EXPECT_EQ(stats.frames_duplicated.load(), 1u);
}

TEST(FaultyChannel, NoFaultsIsByteIdenticalPassthrough) {
  Channel ch;
  FaultStats stats;
  FaultPlan plan;
  FaultyChannel faulty(ch, LinkFaults{}, plan.link_rng(0, false), &stats);
  for (std::uint32_t i = 0; i < 8; ++i) {
    const auto original = sealed_frame(i);
    ASSERT_TRUE(faulty.send(original));
    const auto delivered = ch.recv();
    ASSERT_TRUE(delivered.has_value());
    EXPECT_EQ(*delivered, original);
  }
  EXPECT_EQ(stats.frames_dropped.load(), 0u);
  EXPECT_EQ(stats.frames_corrupted.load(), 0u);
  EXPECT_EQ(stats.frames_duplicated.load(), 0u);
}

TEST(FaultyChannel, SendOnClosedChannelReturnsFalse) {
  Channel ch;
  ch.close();
  FaultStats stats;
  FaultPlan plan;
  FaultyChannel faulty(ch, LinkFaults{}, plan.link_rng(0, true), &stats);
  EXPECT_FALSE(faulty.send(sealed_frame(1)));
  // A dropped frame never touches the channel, so the send still "succeeds".
  FaultyChannel dropper(ch, LinkFaults{.drop_prob = 1.0},
                        plan.link_rng(1, true), &stats);
  EXPECT_TRUE(dropper.send(sealed_frame(2)));
}

TEST(FaultyChannel, SameSeedSameSendSequenceSameFaults) {
  // The determinism contract: the injected fault sequence is a pure
  // function of (plan seed, link, send sequence).
  const LinkFaults faults{.drop_prob = 0.3, .corrupt_prob = 0.2,
                          .duplicate_prob = 0.2};
  auto run = [&] {
    Channel ch;
    FaultStats stats;
    FaultPlan plan;
    plan.seed = 2024;
    FaultyChannel faulty(ch, faults, plan.link_rng(2, false), &stats);
    for (std::uint32_t i = 0; i < 200; ++i) faulty.send(sealed_frame(i));
    ch.close();
    std::vector<std::vector<std::byte>> delivered;
    while (auto f = ch.recv()) delivered.push_back(std::move(*f));
    return std::tuple(std::move(delivered), stats.frames_dropped.load(),
                      stats.frames_corrupted.load(),
                      stats.frames_duplicated.load());
  };
  const auto [frames_a, drop_a, corrupt_a, dup_a] = run();
  const auto [frames_b, drop_b, corrupt_b, dup_b] = run();
  EXPECT_EQ(frames_a, frames_b);
  EXPECT_EQ(drop_a, drop_b);
  EXPECT_EQ(corrupt_a, corrupt_b);
  EXPECT_EQ(dup_a, dup_b);
  // With 200 sends at these rates, every fault type fires essentially
  // always (P[none] < 1e-20 per type).
  EXPECT_GT(drop_a, 0u);
  EXPECT_GT(corrupt_a, 0u);
  EXPECT_GT(dup_a, 0u);
}

}  // namespace
}  // namespace cmfl::net

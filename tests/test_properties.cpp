// Cross-module property sweeps (parameterized): invariants that must hold
// for arbitrary sizes/seeds, exercised across a grid.
#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/relevance.h"
#include "core/significance.h"
#include "net/message.h"
#include "nn/serialize.h"
#include "stats/cdf.h"
#include "util/rng.h"

#include <cmath>
#include <sstream>

namespace cmfl {
namespace {

class SizeSeedTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  std::vector<float> random_vec(std::size_t n, std::uint64_t salt) {
    util::Rng rng(std::get<1>(GetParam()) * 1000 + salt);
    std::vector<float> v(n);
    for (auto& x : v) x = rng.uniform_f(-2.0f, 2.0f);
    return v;
  }
  std::size_t n() const { return std::get<0>(GetParam()); }
};

TEST_P(SizeSeedTest, RelevanceBounded) {
  const auto u = random_vec(n(), 1);
  const auto g = random_vec(n(), 2);
  const double e = core::relevance(u, g);
  EXPECT_GE(e, 0.0);
  EXPECT_LE(e, 1.0);
  // Symmetry: sign agreement is commutative.
  EXPECT_DOUBLE_EQ(core::relevance(g, u), e);
}

TEST_P(SizeSeedTest, RelevanceOfNegationComplements) {
  auto u = random_vec(n(), 3);
  const auto g = random_vec(n(), 4);
  // Perturb away exact zeros so the complement identity is exact.
  for (auto& x : u) {
    if (x == 0.0f) x = 0.5f;
  }
  const double e = core::relevance(u, g);
  for (auto& x : u) x = -x;
  // With u nonzero everywhere, flipping u flips every match against a
  // nonzero g_j; zero g_j entries match neither sign, so
  //   e + e(-u, g) = (N - #zeros(g)) / N.
  std::size_t zeros_g = 0;
  for (float x : g) zeros_g += x == 0.0f;
  const double expected =
      (static_cast<double>(n() - zeros_g) / static_cast<double>(n())) - e;
  EXPECT_NEAR(core::relevance(u, g), expected, 1e-12);
}

TEST_P(SizeSeedTest, SignificanceScalesLinearly) {
  const auto u = random_vec(n(), 5);
  const auto x = random_vec(n(), 6);
  const double s = core::norm_ratio_significance(u, x);
  auto u2 = u;
  for (auto& v : u2) v *= 3.0f;
  EXPECT_NEAR(core::norm_ratio_significance(u2, x), 3.0 * s, 3e-6 * (1 + s));
}

TEST_P(SizeSeedTest, DeltaUpdateTriangleSanity) {
  const auto a = random_vec(n(), 7);
  const auto b = random_vec(n(), 8);
  const double d = core::normalized_update_difference(a, b);
  EXPECT_GE(d, 0.0);
  // Identical updates have zero difference.
  EXPECT_DOUBLE_EQ(core::normalized_update_difference(a, a), 0.0);
}

TEST_P(SizeSeedTest, ParamSerializationRoundTrips) {
  const auto params = random_vec(n(), 9);
  std::stringstream ss;
  nn::save_params(ss, params);
  EXPECT_EQ(nn::load_params(ss), params);
}

TEST_P(SizeSeedTest, UpdateFrameRoundTrips) {
  net::UpdateUploadMsg msg;
  msg.iteration = std::get<1>(GetParam());
  msg.client_id = static_cast<std::uint32_t>(n() % 97);
  msg.update = random_vec(n(), 10);
  msg.score = 0.5;
  const auto frame = net::encode(net::Message(msg));
  const net::Message decoded = net::decode(frame);
  const auto& d = std::get<net::UpdateUploadMsg>(decoded);
  EXPECT_EQ(d.update, msg.update);
  EXPECT_EQ(d.client_id, msg.client_id);
}

TEST_P(SizeSeedTest, CdfQuantileInvertsFraction) {
  util::Rng rng(std::get<1>(GetParam()));
  std::vector<double> samples(n());
  for (auto& s : samples) s = rng.normal();
  const stats::Cdf cdf(samples);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double x = cdf.quantile(q);
    EXPECT_GE(cdf.fraction_at_or_below(x) + 1e-12, q);
  }
}

TEST_P(SizeSeedTest, EstimatorPreviousUpdateIsExact) {
  core::GlobalUpdateEstimator est(n());
  const auto u1 = random_vec(n(), 11);
  const auto u2 = random_vec(n(), 12);
  est.observe(u1);
  est.observe(u2);
  for (std::size_t i = 0; i < n(); ++i) {
    EXPECT_FLOAT_EQ(est.estimate()[i], u2[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SizeSeedTest,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 64, 1000),
                       ::testing::Values<std::uint64_t>(1, 7, 42)));

}  // namespace
}  // namespace cmfl

#include "core/threshold.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cmfl::core {
namespace {

TEST(Schedule, ConstantIsFlat) {
  const Schedule s = Schedule::constant(0.8);
  EXPECT_DOUBLE_EQ(s.at(1), 0.8);
  EXPECT_DOUBLE_EQ(s.at(100), 0.8);
  EXPECT_DOUBLE_EQ(s.at(0), 0.8);  // t=0 clamps to 1
}

TEST(Schedule, InvSqrtDecay) {
  const Schedule s = Schedule::inv_sqrt(1.0);
  EXPECT_DOUBLE_EQ(s.at(1), 1.0);
  EXPECT_DOUBLE_EQ(s.at(4), 0.5);
  EXPECT_DOUBLE_EQ(s.at(100), 0.1);
}

TEST(Schedule, InvLinearDecay) {
  const Schedule s = Schedule::inv_linear(2.0);
  EXPECT_DOUBLE_EQ(s.at(1), 2.0);
  EXPECT_DOUBLE_EQ(s.at(4), 0.5);
}

TEST(Schedule, NegativeBaseRejected) {
  EXPECT_THROW(Schedule(-0.1, ScheduleKind::kConstant), std::invalid_argument);
}

TEST(Schedule, ZeroTClampedToOne) {
  const Schedule s = Schedule::inv_sqrt(1.0);
  EXPECT_DOUBLE_EQ(s.at(0), s.at(1));
}

TEST(Schedule, DescribeMentionsShape) {
  EXPECT_NE(Schedule::inv_sqrt(0.7).describe().find("sqrt"),
            std::string::npos);
  EXPECT_NE(Schedule::inv_linear(0.7).describe().find("/t"),
            std::string::npos);
}

TEST(Schedule, InvPowGeneralizesTheOthers) {
  const Schedule p_half = Schedule::inv_pow(1.0, 0.5);
  const Schedule sqrt_s = Schedule::inv_sqrt(1.0);
  const Schedule p_one = Schedule::inv_pow(2.0, 1.0);
  const Schedule lin = Schedule::inv_linear(2.0);
  for (std::size_t t : {1u, 4u, 9u, 100u}) {
    EXPECT_DOUBLE_EQ(p_half.at(t), sqrt_s.at(t));
    EXPECT_DOUBLE_EQ(p_one.at(t), lin.at(t));
  }
}

TEST(Schedule, InvPowSlowDecayTracksBand) {
  const Schedule s = Schedule::inv_pow(0.55, 0.02);
  EXPECT_DOUBLE_EQ(s.at(1), 0.55);
  EXPECT_NEAR(s.at(50), 0.55 * std::pow(50.0, -0.02), 1e-12);
  // Slow decay: still above 90% of base after 100 iterations.
  EXPECT_GT(s.at(100), 0.55 * 0.9);
}

TEST(Schedule, InvPowValidation) {
  EXPECT_THROW(Schedule::inv_pow(0.5, 0.0), std::invalid_argument);
  EXPECT_THROW(Schedule::inv_pow(0.5, -1.0), std::invalid_argument);
  EXPECT_NE(Schedule::inv_pow(0.5, 0.1).describe().find("t^"),
            std::string::npos);
}

// Property: every schedule is non-increasing in t.
class ScheduleMonotoneTest : public ::testing::TestWithParam<ScheduleKind> {};

TEST_P(ScheduleMonotoneTest, NonIncreasing) {
  const Schedule s(0.9, GetParam());
  double prev = s.at(1);
  for (std::size_t t = 2; t < 1000; t += 7) {
    const double cur = s.at(t);
    EXPECT_LE(cur, prev + 1e-15);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, ScheduleMonotoneTest,
                         ::testing::Values(ScheduleKind::kConstant,
                                           ScheduleKind::kInvSqrt,
                                           ScheduleKind::kInvLinear,
                                           ScheduleKind::kInvPow));

// Theorem 1 remark 2: with v_t = v0/sqrt(t), (1/T)·Σ v_t -> 0.
TEST(Schedule, InvSqrtTimeAverageVanishes) {
  const Schedule s = Schedule::inv_sqrt(1.0);
  auto time_average = [&](std::size_t T) {
    double sum = 0.0;
    for (std::size_t t = 1; t <= T; ++t) sum += s.at(t);
    return sum / static_cast<double>(T);
  };
  EXPECT_LT(time_average(10000), time_average(100));
  EXPECT_LT(time_average(10000), 0.02001);  // ~2/sqrt(T)
}

}  // namespace
}  // namespace cmfl::core

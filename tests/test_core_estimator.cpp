#include "core/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cmfl::core {
namespace {

TEST(Estimator, StartsAtZero) {
  GlobalUpdateEstimator est(3);
  EXPECT_FALSE(est.has_observation());
  for (float v : est.estimate()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Estimator, PreviousUpdateMode) {
  GlobalUpdateEstimator est(2);
  est.observe(std::vector<float>{1.0f, -2.0f});
  EXPECT_TRUE(est.has_observation());
  EXPECT_FLOAT_EQ(est.estimate()[0], 1.0f);
  EXPECT_FLOAT_EQ(est.estimate()[1], -2.0f);
  est.observe(std::vector<float>{5.0f, 6.0f});
  EXPECT_FLOAT_EQ(est.estimate()[0], 5.0f);
}

TEST(Estimator, EmaBlends) {
  GlobalUpdateEstimator est(1, 0.5);
  est.observe(std::vector<float>{4.0f});  // first observation copies
  EXPECT_FLOAT_EQ(est.estimate()[0], 4.0f);
  est.observe(std::vector<float>{0.0f});
  EXPECT_FLOAT_EQ(est.estimate()[0], 2.0f);
  est.observe(std::vector<float>{2.0f});
  EXPECT_FLOAT_EQ(est.estimate()[0], 2.0f);
}

TEST(Estimator, Validation) {
  EXPECT_THROW(GlobalUpdateEstimator(0), std::invalid_argument);
  EXPECT_THROW(GlobalUpdateEstimator(2, 1.0), std::invalid_argument);
  EXPECT_THROW(GlobalUpdateEstimator(2, -0.1), std::invalid_argument);
  GlobalUpdateEstimator est(2);
  EXPECT_THROW(est.observe(std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(Estimator, ResetClears) {
  GlobalUpdateEstimator est(2);
  est.observe(std::vector<float>{1.0f, 1.0f});
  est.reset();
  EXPECT_FALSE(est.has_observation());
  for (float v : est.estimate()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(DeltaUpdate, Eq8Definition) {
  std::vector<float> prev = {3.0f, 4.0f};            // norm 5
  std::vector<float> next = {3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(normalized_update_difference(prev, next), 0.0);
  next = {6.0f, 8.0f};                               // diff (3,4) -> norm 5
  EXPECT_DOUBLE_EQ(normalized_update_difference(prev, next), 1.0);
}

TEST(DeltaUpdate, ZeroPrevHandling) {
  std::vector<float> zero = {0.0f, 0.0f};
  std::vector<float> next = {1.0f, 0.0f};
  EXPECT_TRUE(std::isinf(normalized_update_difference(zero, next)));
  EXPECT_DOUBLE_EQ(normalized_update_difference(zero, zero), 0.0);
}

TEST(DeltaUpdate, Validation) {
  std::vector<float> a = {1.0f};
  std::vector<float> b = {1.0f, 2.0f};
  EXPECT_THROW(normalized_update_difference(a, b), std::invalid_argument);
  EXPECT_THROW(normalized_update_difference({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::core

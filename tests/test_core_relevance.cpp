#include "core/relevance.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace cmfl::core {
namespace {

TEST(Relevance, PerfectAlignment) {
  std::vector<float> u = {1.0f, -2.0f, 3.0f};
  std::vector<float> g = {0.5f, -0.1f, 9.0f};
  EXPECT_DOUBLE_EQ(relevance(u, g), 1.0);
}

TEST(Relevance, PerfectOpposition) {
  std::vector<float> u = {1.0f, -2.0f};
  std::vector<float> g = {-1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(relevance(u, g), 0.0);
}

TEST(Relevance, PartialAgreement) {
  std::vector<float> u = {1.0f, 1.0f, -1.0f, -1.0f};
  std::vector<float> g = {1.0f, -1.0f, -1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(relevance(u, g), 0.5);
}

TEST(Relevance, ZeroMatchesOnlyZero) {
  std::vector<float> u = {0.0f, 0.0f, 1.0f};
  std::vector<float> g = {0.0f, 1.0f, 1.0f};
  EXPECT_DOUBLE_EQ(relevance(u, g), 2.0 / 3.0);
}

TEST(Relevance, SizeMismatchAndEmptyRejected) {
  std::vector<float> u = {1.0f};
  std::vector<float> g = {1.0f, 2.0f};
  EXPECT_THROW(relevance(u, g), std::invalid_argument);
  EXPECT_THROW(relevance(std::vector<float>{}, std::vector<float>{}),
               std::invalid_argument);
}

TEST(Relevance, SelfRelevanceIsOne) {
  util::Rng rng(3);
  std::vector<float> u(256);
  for (auto& v : u) v = rng.uniform_f(-1.0f, 1.0f);
  EXPECT_DOUBLE_EQ(relevance(u, u), 1.0);
}

// Scale invariance: relevance(alpha*u, beta*g) == relevance(u, g) for
// positive alpha, beta — the key property Gaia's magnitude measure lacks.
class RelevanceScaleTest
    : public ::testing::TestWithParam<std::pair<float, float>> {};

TEST_P(RelevanceScaleTest, ScaleInvariantForPositiveScales) {
  const auto [alpha, beta] = GetParam();
  util::Rng rng(17);
  std::vector<float> u(128), g(128);
  for (auto& v : u) v = rng.uniform_f(-1.0f, 1.0f);
  for (auto& v : g) v = rng.uniform_f(-1.0f, 1.0f);
  const double base = relevance(u, g);
  std::vector<float> su = u, sg = g;
  for (auto& v : su) v *= alpha;
  for (auto& v : sg) v *= beta;
  EXPECT_DOUBLE_EQ(relevance(su, sg), base);
}

INSTANTIATE_TEST_SUITE_P(
    Scales, RelevanceScaleTest,
    ::testing::Values(std::pair{0.001f, 1.0f}, std::pair{1000.0f, 1.0f},
                      std::pair{1.0f, 0.001f}, std::pair{1.0f, 1000.0f},
                      std::pair{42.0f, 0.17f}));

// Negating the local update flips relevance to (1 - e) when no zeros exist.
TEST(Relevance, NegationComplement) {
  util::Rng rng(29);
  std::vector<float> u(200), g(200);
  for (auto& v : u) v = rng.uniform() < 0.5 ? -1.0f : 1.0f;
  for (auto& v : g) v = rng.uniform() < 0.5 ? -1.0f : 1.0f;
  const double e = relevance(u, g);
  std::vector<float> nu = u;
  for (auto& v : nu) v = -v;
  EXPECT_DOUBLE_EQ(relevance(nu, g), 1.0 - e);
}

// Random sign vectors should agree about half the time.
TEST(Relevance, RandomVectorsNearHalf) {
  util::Rng rng(31);
  double total = 0.0;
  const int trials = 50;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<float> u(1000), g(1000);
    for (auto& v : u) v = rng.uniform_f(-1.0f, 1.0f);
    for (auto& v : g) v = rng.uniform_f(-1.0f, 1.0f);
    total += relevance(u, g);
  }
  EXPECT_NEAR(total / trials, 0.5, 0.02);
}

TEST(IsZeroUpdate, DetectsZeroAndNonzero) {
  EXPECT_TRUE(is_zero_update(std::vector<float>{0.0f, 0.0f}));
  EXPECT_TRUE(is_zero_update(std::vector<float>{}));
  EXPECT_FALSE(is_zero_update(std::vector<float>{0.0f, 1e-30f}));
}

}  // namespace
}  // namespace cmfl::core

// Aggregation / participation / compression options of the FL loop.
#include <gtest/gtest.h>

#include "core/filter.h"
#include "fl/simulation.h"
#include "fl/workloads.h"

namespace cmfl::fl {
namespace {

DigitsMlpSpec small_spec() {
  DigitsMlpSpec spec;
  spec.clients = 8;
  spec.train_samples = 240;
  spec.test_samples = 80;
  spec.hidden = {16};
  spec.digits.image_size = 8;
  spec.seed = 5;
  return spec;
}

SimulationOptions fast_options() {
  SimulationOptions opt;
  opt.local_epochs = 1;
  opt.batch_size = 5;
  opt.learning_rate = core::Schedule::constant(0.1);
  opt.max_iterations = 10;
  opt.eval_every = 5;
  return opt;
}

SimulationResult run(SimulationOptions opt) {
  Workload w = make_digits_mlp_workload(small_spec());
  FederatedSimulation sim(std::move(w.clients),
                          std::make_unique<core::AcceptAllFilter>(),
                          w.evaluator, opt);
  return sim.run();
}

TEST(Participation, FractionBoundsUploadsPerRound) {
  auto opt = fast_options();
  opt.participation = 0.5;
  const SimulationResult r = run(opt);
  for (const auto& rec : r.history) {
    EXPECT_EQ(rec.uploads, 4u);  // 8 clients * 0.5
  }
  EXPECT_EQ(r.total_rounds, 4u * 10u);
}

TEST(Participation, InvalidValuesRejected) {
  auto opt = fast_options();
  opt.participation = 0.0;
  EXPECT_THROW(run(opt), std::invalid_argument);
  opt.participation = 1.5;
  EXPECT_THROW(run(opt), std::invalid_argument);
}

TEST(Participation, TinyFractionStillRunsOneClient) {
  auto opt = fast_options();
  opt.participation = 0.01;
  const SimulationResult r = run(opt);
  for (const auto& rec : r.history) EXPECT_EQ(rec.uploads, 1u);
}

TEST(Participation, SampledRunStillLearns) {
  auto opt = fast_options();
  opt.max_iterations = 40;
  opt.participation = 0.5;
  const SimulationResult r = run(opt);
  EXPECT_GT(r.final_accuracy, 0.3);
}

TEST(Aggregation, SampleWeightedDiffersFromUniform) {
  auto opt = fast_options();
  opt.max_iterations = 5;
  const SimulationResult uniform = run(opt);
  opt.aggregation = Aggregation::kSampleWeighted;
  const SimulationResult weighted = run(opt);
  // Shard sizes are equal under label_sorted with divisible sizes, so force
  // a difference check only if shards differ; otherwise results coincide.
  Workload w = make_digits_mlp_workload(small_spec());
  bool equal_shards = true;
  const std::size_t first = w.clients.front()->local_samples();
  for (const auto& c : w.clients) {
    equal_shards &= c->local_samples() == first;
  }
  if (equal_shards) {
    EXPECT_EQ(uniform.final_params, weighted.final_params);
  } else {
    EXPECT_NE(uniform.final_params, weighted.final_params);
  }
}

TEST(Aggregation, SampleWeightedStillConverges) {
  auto opt = fast_options();
  opt.max_iterations = 40;
  opt.aggregation = Aggregation::kSampleWeighted;
  const SimulationResult r = run(opt);
  EXPECT_GT(r.final_accuracy, 0.4);
}

TEST(Compression, BytesAccountedAndSmallerWhenCompressed) {
  auto opt = fast_options();
  const SimulationResult raw = run(opt);
  // float32: 8-byte header + 4 bytes per parameter per upload.
  Workload w = make_digits_mlp_workload(small_spec());
  const std::uint64_t expected =
      raw.total_rounds * (8 + 4 * static_cast<std::uint64_t>(w.param_count));
  EXPECT_EQ(raw.uploaded_bytes, expected);

  opt.codec.spec = "quantize8";  // legacy alias for quant:8
  const SimulationResult quant = run(opt);
  EXPECT_LT(quant.uploaded_bytes, raw.uploaded_bytes / 3);
  EXPECT_GT(quant.final_accuracy, 0.2);  // lossy but training still works

  opt.codec.spec = "subsample:0.25";
  const SimulationResult sub = run(opt);
  // 25% of coordinates at 8 bytes each (index + value) ≈ 0.5x of float32.
  EXPECT_LT(static_cast<double>(sub.uploaded_bytes),
            static_cast<double>(raw.uploaded_bytes) * 0.55);
}

TEST(Compression, UnknownSpecRejected) {
  auto opt = fast_options();
  opt.codec.spec = "zstd";
  EXPECT_THROW(run(opt), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::fl

// Heap-allocation regression tests for the training hot path.
//
// The steady-state contract (DESIGN.md §12): after a warm-up step has sized
// every layer workspace, FeedForward::train_batch and LstmLm::train_batch
// must not touch the heap at all.  The global operator-new hook in
// alloc_counter.cpp counts every allocation across all threads, so a
// regression anywhere in the step (layer temporaries, std::function
// type-erasure, ParamPack rebuilds, ...) fails these tests.
#include <gtest/gtest.h>

#include <vector>

#include "alloc_counter.h"
#include "nn/feed_forward.h"
#include "nn/lstm_lm.h"
#include "util/rng.h"

namespace cmfl::nn {
namespace {

constexpr int kWarmupSteps = 3;
constexpr int kMeasuredSteps = 5;

void fill_batch(tensor::Matrix& x, std::vector<int>& y, std::size_t classes,
                util::Rng& rng) {
  for (std::size_t i = 0; i < x.rows(); ++i) {
    y[static_cast<std::size_t>(i)] = static_cast<int>(i % classes);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      x.at(i, j) = rng.normal_f(0.0f, 1.0f);
    }
  }
}

TEST(AllocFreeTrainStep, MlpSteadyStateAllocatesNothing) {
  util::Rng rng(11);
  FeedForward model = make_mlp(32, {24, 16}, 10, rng);
  tensor::Matrix x(8, 32);
  std::vector<int> y(8);
  fill_batch(x, y, 10, rng);

  for (int s = 0; s < kWarmupSteps; ++s) model.train_batch(x, y, 0.05f);

  testing::reset_alloc_count();
  for (int s = 0; s < kMeasuredSteps; ++s) model.train_batch(x, y, 0.05f);
  EXPECT_EQ(testing::alloc_count(), 0u)
      << "steady-state MLP train step touched the heap";
}

TEST(AllocFreeTrainStep, CnnSteadyStateAllocatesNothing) {
  util::Rng rng(12);
  CnnSpec spec;
  spec.image_size = 8;
  spec.conv1_filters = 4;
  spec.conv2_filters = 8;
  spec.fc_width = 16;
  FeedForward model = make_digits_cnn(spec, rng);
  tensor::Matrix x(4, 64);
  std::vector<int> y(4);
  fill_batch(x, y, 10, rng);

  for (int s = 0; s < kWarmupSteps; ++s) model.train_batch(x, y, 0.05f);

  testing::reset_alloc_count();
  for (int s = 0; s < kMeasuredSteps; ++s) model.train_batch(x, y, 0.05f);
  EXPECT_EQ(testing::alloc_count(), 0u)
      << "steady-state CNN train step touched the heap";
}

TEST(AllocFreeTrainStep, LstmLmSteadyStateAllocatesNothing) {
  util::Rng rng(13);
  LstmLmSpec spec;
  spec.vocab = 32;
  spec.embed_dim = 8;
  spec.hidden_dim = 12;
  spec.layers = 1;  // the 2-layer stacking path is documented as not
                    // allocation-free (Lstm::hidden_states copies)
  LstmLm model(spec);
  model.init_params(rng);

  SeqBatch x;
  x.batch = 4;
  x.seq_len = 6;
  x.tokens.resize(x.batch * x.seq_len);
  std::vector<int> next(x.batch);
  for (auto& t : x.tokens) t = static_cast<int>(rng.uniform_index(32));
  for (auto& t : next) t = static_cast<int>(rng.uniform_index(32));

  for (int s = 0; s < kWarmupSteps; ++s) model.train_batch(x, next, 0.05f);

  testing::reset_alloc_count();
  for (int s = 0; s < kMeasuredSteps; ++s) model.train_batch(x, next, 0.05f);
  EXPECT_EQ(testing::alloc_count(), 0u)
      << "steady-state LSTM-LM train step touched the heap";
}

// Changing the batch size legitimately re-sizes workspaces; the step after
// that must be allocation-free again.
TEST(AllocFreeTrainStep, ReSteadyAfterBatchSizeChange) {
  util::Rng rng(14);
  FeedForward model = make_mlp(16, {12}, 4, rng);
  tensor::Matrix x8(8, 16), x4(4, 16);
  std::vector<int> y8(8), y4(4);
  fill_batch(x8, y8, 4, rng);
  fill_batch(x4, y4, 4, rng);

  for (int s = 0; s < kWarmupSteps; ++s) model.train_batch(x8, y8, 0.05f);
  model.train_batch(x4, y4, 0.05f);  // shrink: capacity reused
  model.train_batch(x8, y8, 0.05f);  // grow back: capacity still there

  testing::reset_alloc_count();
  model.train_batch(x4, y4, 0.05f);
  model.train_batch(x8, y8, 0.05f);
  EXPECT_EQ(testing::alloc_count(), 0u)
      << "alternating warmed-up batch sizes touched the heap";
}

}  // namespace
}  // namespace cmfl::nn

#include "mtl/omega.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cmfl::mtl {
namespace {

tensor::Matrix random_symmetric(std::size_t n, util::Rng& rng) {
  tensor::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const float v = rng.uniform_f(-1.0f, 1.0f);
      m.at(i, j) = v;
      m.at(j, i) = v;
    }
  }
  return m;
}

TEST(SymmetricEigen, DiagonalMatrix) {
  tensor::Matrix a(3, 3);
  a.at(0, 0) = 3.0f;
  a.at(1, 1) = 1.0f;
  a.at(2, 2) = 2.0f;
  std::vector<double> values;
  tensor::Matrix vectors;
  symmetric_eigen(a, values, vectors);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NEAR(sorted[0], 1.0, 1e-8);
  EXPECT_NEAR(sorted[1], 2.0, 1e-8);
  EXPECT_NEAR(sorted[2], 3.0, 1e-8);
}

TEST(SymmetricEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  tensor::Matrix a(2, 2, {2, 1, 1, 2});
  std::vector<double> values;
  tensor::Matrix vectors;
  symmetric_eigen(a, values, vectors);
  std::sort(values.begin(), values.end());
  EXPECT_NEAR(values[0], 1.0, 1e-8);
  EXPECT_NEAR(values[1], 3.0, 1e-8);
}

TEST(SymmetricEigen, ReconstructsMatrix) {
  util::Rng rng(1);
  const tensor::Matrix a = random_symmetric(6, rng);
  std::vector<double> values;
  tensor::Matrix v;
  symmetric_eigen(a, values, v);
  // A ?= V diag(λ) Vᵀ
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 6; ++k) {
        acc += static_cast<double>(v.at(i, k)) * values[k] *
               static_cast<double>(v.at(j, k));
      }
      EXPECT_NEAR(acc, a.at(i, j), 1e-4);
    }
  }
}

TEST(SymmetricEigen, EigenvectorsOrthonormal) {
  util::Rng rng(2);
  const tensor::Matrix a = random_symmetric(5, rng);
  std::vector<double> values;
  tensor::Matrix v;
  symmetric_eigen(a, values, v);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 5; ++k) {
        acc += static_cast<double>(v.at(k, i)) * static_cast<double>(v.at(k, j));
      }
      EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-5);
    }
  }
}

TEST(SymmetricEigen, RejectsAsymmetricAndNonSquare) {
  tensor::Matrix bad(2, 2, {1, 2, 3, 4});
  std::vector<double> values;
  tensor::Matrix v;
  EXPECT_THROW(symmetric_eigen(bad, values, v), std::invalid_argument);
  tensor::Matrix rect(2, 3);
  EXPECT_THROW(symmetric_eigen(rect, values, v), std::invalid_argument);
}

TEST(SqrtmPsd, SquaresBackToOriginal) {
  util::Rng rng(3);
  // Build a PSD matrix A = B Bᵀ and verify sqrt(A)² = A.
  tensor::Matrix b = random_symmetric(4, rng);
  tensor::Matrix a(4, 4);
  tensor::matmul_nt(b, b, a);
  const tensor::Matrix root = sqrtm_psd(a);
  tensor::Matrix squared(4, 4);
  tensor::matmul(root, root, squared);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(squared.flat()[i], a.flat()[i], 1e-3);
  }
}

TEST(UpdateOmega, UnitTraceAndSymmetry) {
  util::Rng rng(4);
  tensor::Matrix w(5, 8);
  for (float& v : w.flat()) v = rng.uniform_f(-1.0f, 1.0f);
  const tensor::Matrix omega = update_omega(w);
  double trace = 0.0;
  for (std::size_t i = 0; i < 5; ++i) trace += omega.at(i, i);
  EXPECT_NEAR(trace, 1.0, 1e-5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(omega.at(i, j), omega.at(j, i), 1e-5);
    }
  }
}

TEST(UpdateOmega, RelatedTasksCoupleStronger) {
  // Tasks 0 and 1 share a direction; task 2 is orthogonal.  Ω must give
  // (0,1) a larger off-diagonal entry than (0,2).
  tensor::Matrix w(3, 4);
  w.at(0, 0) = 1.0f;
  w.at(1, 0) = 0.9f;
  w.at(1, 1) = 0.1f;
  w.at(2, 2) = 1.0f;
  const tensor::Matrix omega = update_omega(w, 1e-6);
  EXPECT_GT(omega.at(0, 1), std::fabs(omega.at(0, 2)) + 0.05);
}

TEST(IdentityOmega, UniformDiagonal) {
  const tensor::Matrix omega = identity_omega(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(omega.at(i, j), i == j ? 0.25f : 0.0f);
    }
  }
  EXPECT_THROW(identity_omega(0), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::mtl

#include "data/partition.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/batcher.h"
#include "data/dataset.h"

namespace cmfl::data {
namespace {

std::vector<int> cyclic_labels(std::size_t n, int classes) {
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = static_cast<int>(i) % classes;
  }
  return labels;
}

TEST(LabelSortedPartition, ConservesAndConcentratesClasses) {
  const auto labels = cyclic_labels(1000, 10);
  const Partition p = label_sorted_partition(labels, 20);
  validate_partition(p, 1000);
  EXPECT_EQ(p.total_samples(), 1000u);
  // Every client's shard spans at most 2 distinct labels (paper's
  // pathological non-IID protocol: 1000/20 = 50 samples per client, 100 per
  // label -> contiguous slices touch <= 2 labels).
  for (const auto& shard : p.client_indices) {
    std::set<int> classes;
    for (std::size_t idx : shard) classes.insert(labels[idx]);
    EXPECT_LE(classes.size(), 2u);
  }
}

TEST(LabelSortedPartition, Validation) {
  const auto labels = cyclic_labels(10, 2);
  EXPECT_THROW(label_sorted_partition(labels, 0), std::invalid_argument);
  EXPECT_THROW(label_sorted_partition(labels, 11), std::invalid_argument);
}

TEST(ShardedPartition, TwoShardsPerClientGivesFewClasses) {
  util::Rng rng(1);
  const auto labels = cyclic_labels(1000, 10);
  const Partition p = sharded_partition(labels, 50, 2, rng);
  validate_partition(p, 1000);
  EXPECT_EQ(p.total_samples(), 1000u);
  std::size_t total_classes = 0;
  for (const auto& shard : p.client_indices) {
    std::set<int> classes;
    for (std::size_t idx : shard) classes.insert(labels[idx]);
    EXPECT_LE(classes.size(), 4u);  // 2 shards -> at most 4 boundary classes
    total_classes += classes.size();
  }
  // On average clients see far fewer classes than 10.
  EXPECT_LT(static_cast<double>(total_classes) / 50.0, 4.0);
}

TEST(ShardedPartition, Validation) {
  util::Rng rng(1);
  const auto labels = cyclic_labels(10, 2);
  EXPECT_THROW(sharded_partition(labels, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(sharded_partition(labels, 10, 2, rng), std::invalid_argument);
}

TEST(IidPartition, RoughlyUniformClassMix) {
  util::Rng rng(2);
  const auto labels = cyclic_labels(2000, 4);
  const Partition p = iid_partition(2000, 10, rng);
  validate_partition(p, 2000);
  for (const auto& shard : p.client_indices) {
    std::set<int> classes;
    for (std::size_t idx : shard) classes.insert(labels[idx]);
    EXPECT_EQ(classes.size(), 4u);  // every client sees every class
  }
}

TEST(RandomSizedPartition, RespectsBoundsAndConserves) {
  util::Rng rng(3);
  const Partition p = random_sized_partition(2000, 15, 10, 200, rng);
  validate_partition(p, 2000);
  EXPECT_EQ(p.clients(), 15u);
  for (const auto& shard : p.client_indices) {
    EXPECT_GE(shard.size(), 10u);
    EXPECT_LE(shard.size(), 200u);
  }
  // Sizes vary (not all equal).
  std::set<std::size_t> sizes;
  for (const auto& shard : p.client_indices) sizes.insert(shard.size());
  EXPECT_GT(sizes.size(), 3u);
}

TEST(RandomSizedPartition, Validation) {
  util::Rng rng(4);
  EXPECT_THROW(random_sized_partition(100, 0, 1, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(random_sized_partition(100, 10, 20, 30, rng),
               std::invalid_argument);  // 10*20 > 100
  EXPECT_THROW(random_sized_partition(100, 5, 10, 5, rng),
               std::invalid_argument);  // max < min
}

TEST(ValidatePartition, CatchesDuplicatesAndOutOfRange) {
  Partition dup;
  dup.client_indices = {{0, 1}, {1, 2}};
  EXPECT_THROW(validate_partition(dup, 3), std::logic_error);
  Partition oob;
  oob.client_indices = {{0, 5}};
  EXPECT_THROW(validate_partition(oob, 3), std::logic_error);
  Partition ok;
  ok.client_indices = {{0, 2}, {1}};
  EXPECT_NO_THROW(validate_partition(ok, 3));
}

TEST(Batcher, EpochCoversShardOnce) {
  util::Rng rng(5);
  std::vector<std::size_t> shard = {5, 9, 2, 7, 11, 3, 8};
  Batcher batcher(shard, 3);
  EXPECT_EQ(batcher.batches_per_epoch(), 3u);
  const auto batches = batcher.epoch(rng);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 3u);
  EXPECT_EQ(batches[2].size(), 1u);
  std::multiset<std::size_t> seen;
  for (const auto& b : batches) seen.insert(b.begin(), b.end());
  EXPECT_EQ(seen, std::multiset<std::size_t>(shard.begin(), shard.end()));
}

TEST(Batcher, ShufflesBetweenEpochs) {
  util::Rng rng(6);
  std::vector<std::size_t> shard(100);
  std::iota(shard.begin(), shard.end(), 0);
  Batcher batcher(shard, 100);
  const auto e1 = batcher.epoch(rng);
  const auto e2 = batcher.epoch(rng);
  EXPECT_NE(e1[0], e2[0]);
}

TEST(Batcher, Validation) {
  std::vector<std::size_t> shard = {1};
  EXPECT_THROW(Batcher(shard, 0), std::invalid_argument);
  EXPECT_THROW(Batcher(std::vector<std::size_t>{}, 2), std::invalid_argument);
}

TEST(SplitIndices, PartitionsWholeRange) {
  util::Rng rng(7);
  const Split s = split_indices(100, 0.8, rng);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.test.size(), 20u);
  std::set<std::size_t> all(s.train.begin(), s.train.end());
  all.insert(s.test.begin(), s.test.end());
  EXPECT_EQ(all.size(), 100u);
  EXPECT_THROW(split_indices(10, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(split_indices(10, 1.5, rng), std::invalid_argument);
}

TEST(DenseDataset, GatherAndValidation) {
  DenseDataset ds;
  ds.x = tensor::Matrix(3, 2, {1, 2, 3, 4, 5, 6});
  ds.y = {7, 8, 9};
  ds.validate();
  tensor::Matrix bx;
  std::vector<int> by;
  std::vector<std::size_t> idx = {2, 0};
  ds.gather(idx, bx, by);
  EXPECT_FLOAT_EQ(bx.at(0, 0), 5.0f);
  EXPECT_EQ(by[0], 9);
  EXPECT_EQ(by[1], 7);
  std::vector<std::size_t> bad = {3};
  EXPECT_THROW(ds.gather(bad, bx, by), std::out_of_range);
  ds.y.pop_back();
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

TEST(SequenceDataset, GatherAndValidation) {
  SequenceDataset ds;
  ds.seq_len = 2;
  ds.vocab = 10;
  ds.tokens = {1, 2, 3, 4, 5, 6};
  ds.next_token = {7, 8, 9};
  ds.validate();
  nn::SeqBatch bx;
  std::vector<int> by;
  std::vector<std::size_t> idx = {1};
  ds.gather(idx, bx, by);
  EXPECT_EQ(bx.tokens, (std::vector<int>{3, 4}));
  EXPECT_EQ(by[0], 8);
  ds.tokens.push_back(99);
  EXPECT_THROW(ds.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace cmfl::data

#include "fl/convex_testbed.h"

#include <gtest/gtest.h>

namespace cmfl::fl {
namespace {

ConvexTestbedSpec small_spec() {
  ConvexTestbedSpec spec;
  spec.clients = 20;
  spec.dim = 16;
  spec.local_steps = 3;
  spec.gradient_noise = 0.05;
  spec.seed = 7;
  return spec;
}

TEST(ConvexTestbed, OptimumIsCenterMean) {
  ConvexTestbed tb(small_spec());
  // f is minimized at the optimum: perturbing in any coordinate increases f.
  const auto& opt = tb.optimum();
  const double f_star = tb.global_loss(opt);
  std::vector<float> perturbed(opt.begin(), opt.end());
  for (std::size_t j = 0; j < perturbed.size(); j += 5) {
    perturbed[j] += 0.1f;
  }
  EXPECT_GT(tb.global_loss(perturbed), f_star);
}

TEST(ConvexTestbed, VanillaRegretVanishes) {
  ConvexTestbed tb(small_spec());
  core::AcceptAllFilter filter;
  const auto r = tb.run(400, core::Schedule::inv_sqrt(0.2), filter);
  ASSERT_EQ(r.regret.size(), 400u);
  // Theorem 1: the time-averaged regret decreases as T grows.
  EXPECT_LT(r.time_averaged_regret[399], r.time_averaged_regret[50]);
  EXPECT_LT(r.final_loss_gap, r.regret.front());
  EXPECT_EQ(r.total_rounds, 20u * 400u);
}

TEST(ConvexTestbed, CmflConvergesWithFewerRounds) {
  ConvexTestbed tb(small_spec());
  core::AcceptAllFilter vanilla;
  const auto base = tb.run(400, core::Schedule::inv_sqrt(0.2), vanilla);
  core::CmflFilter cmfl(core::Schedule::inv_sqrt(0.5));
  const auto filtered = tb.run(400, core::Schedule::inv_sqrt(0.2), cmfl);
  EXPECT_LT(filtered.total_rounds, base.total_rounds);
  // Convergence preserved: the time-averaged regret still decays...
  EXPECT_LT(filtered.time_averaged_regret[399],
            filtered.time_averaged_regret[50]);
  // ...and the final gap is within a small factor of vanilla's.
  EXPECT_LT(filtered.final_loss_gap, base.final_loss_gap * 10 + 0.5);
}

TEST(ConvexTestbed, DecayingScheduleBeatsConstantLr) {
  ConvexTestbedSpec spec = small_spec();
  spec.gradient_noise = 0.3;  // noise floor matters for constant lr
  ConvexTestbed tb(spec);
  core::AcceptAllFilter filter;
  const auto decayed = tb.run(600, core::Schedule::inv_sqrt(0.2), filter);
  const auto constant = tb.run(600, core::Schedule::constant(0.2), filter);
  EXPECT_LT(decayed.final_loss_gap, constant.final_loss_gap);
}

TEST(ConvexTestbed, Validation) {
  ConvexTestbedSpec bad = small_spec();
  bad.clients = 0;
  EXPECT_THROW(ConvexTestbed{bad}, std::invalid_argument);
  ConvexTestbed tb(small_spec());
  std::vector<float> wrong(3);
  EXPECT_THROW(tb.global_loss(wrong), std::invalid_argument);
}

TEST(ConvexTestbed, DeterministicPerSeed) {
  ConvexTestbed a(small_spec());
  ConvexTestbed b(small_spec());
  core::AcceptAllFilter filter;
  const auto ra = a.run(50, core::Schedule::inv_sqrt(0.2), filter);
  const auto rb = b.run(50, core::Schedule::inv_sqrt(0.2), filter);
  EXPECT_EQ(ra.regret, rb.regret);
}

TEST(ConvexClient, TrainsTowardItsCenterAndReportsExactLoss) {
  const std::vector<float> center = {1.0f, -2.0f, 0.5f};
  ConvexClient client(center, /*local_steps=*/10, /*gradient_noise=*/0.0,
                      util::Rng(3));
  EXPECT_EQ(client.param_count(), 3u);
  const std::vector<float> x0(3, 0.0f);
  client.set_params(x0);
  const double loss =
      client.train_local(/*epochs=*/5, /*batch_size=*/1, /*lr=*/0.2f);
  std::vector<float> x(3);
  client.get_params(x);
  // Noise-free gradient descent contracts toward c; the returned loss is
  // the exact final f_k = 0.5*dist^2, which must be tiny after 50 steps.
  double sq = 0.0;
  for (std::size_t j = 0; j < 3; ++j) {
    const double d =
        static_cast<double>(x[j]) - static_cast<double>(center[j]);
    sq += d * d;
  }
  EXPECT_NEAR(loss, 0.5 * sq, 1e-12);
  EXPECT_LT(loss, 1e-6);
}

TEST(ConvexClient, Validation) {
  EXPECT_THROW(ConvexClient({}, 3, 0.0, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(ConvexClient({1.0f}, 0, 0.0, util::Rng(1)),
               std::invalid_argument);
  ConvexClient c({1.0f, 2.0f}, 1, 0.0, util::Rng(1));
  std::vector<float> wrong(3);
  EXPECT_THROW(c.set_params(wrong), std::invalid_argument);
  EXPECT_THROW(c.get_params(wrong), std::invalid_argument);
}

TEST(ConvexWorkload, ClientsMatchTestbedAndEvaluatorPeaksAtOptimum) {
  const ConvexTestbedSpec spec = small_spec();
  ConvexWorkload w = make_convex_workload(spec);
  ASSERT_EQ(w.clients.size(), spec.clients);
  for (const auto& c : w.clients) {
    EXPECT_EQ(c->param_count(), spec.dim);
  }
  // Evaluator accuracy is 1 at x* and strictly smaller elsewhere.
  const auto at_opt = w.evaluator(w.testbed->optimum());
  EXPECT_DOUBLE_EQ(at_opt.accuracy, 1.0);
  const std::vector<float> away(spec.dim, 3.0f);
  const auto off_opt = w.evaluator(away);
  EXPECT_LT(off_opt.accuracy, at_opt.accuracy);
  EXPECT_EQ(off_opt.samples, spec.clients);
}

TEST(ConvexWorkload, DeterministicPerSeed) {
  const ConvexTestbedSpec spec = small_spec();
  ConvexWorkload a = make_convex_workload(spec);
  ConvexWorkload b = make_convex_workload(spec);
  const std::vector<float> start(spec.dim, 0.0f);
  for (std::size_t k = 0; k < spec.clients; ++k) {
    a.clients[k]->set_params(start);
    b.clients[k]->set_params(start);
    EXPECT_EQ(a.clients[k]->train_local(1, 1, 0.1f),
              b.clients[k]->train_local(1, 1, 0.1f));
    std::vector<float> pa(spec.dim), pb(spec.dim);
    a.clients[k]->get_params(pa);
    b.clients[k]->get_params(pb);
    EXPECT_EQ(pa, pb);
  }
}

}  // namespace
}  // namespace cmfl::fl

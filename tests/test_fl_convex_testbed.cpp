#include "fl/convex_testbed.h"

#include <gtest/gtest.h>

namespace cmfl::fl {
namespace {

ConvexTestbedSpec small_spec() {
  ConvexTestbedSpec spec;
  spec.clients = 20;
  spec.dim = 16;
  spec.local_steps = 3;
  spec.gradient_noise = 0.05;
  spec.seed = 7;
  return spec;
}

TEST(ConvexTestbed, OptimumIsCenterMean) {
  ConvexTestbed tb(small_spec());
  // f is minimized at the optimum: perturbing in any coordinate increases f.
  const auto& opt = tb.optimum();
  const double f_star = tb.global_loss(opt);
  std::vector<float> perturbed(opt.begin(), opt.end());
  for (std::size_t j = 0; j < perturbed.size(); j += 5) {
    perturbed[j] += 0.1f;
  }
  EXPECT_GT(tb.global_loss(perturbed), f_star);
}

TEST(ConvexTestbed, VanillaRegretVanishes) {
  ConvexTestbed tb(small_spec());
  core::AcceptAllFilter filter;
  const auto r = tb.run(400, core::Schedule::inv_sqrt(0.2), filter);
  ASSERT_EQ(r.regret.size(), 400u);
  // Theorem 1: the time-averaged regret decreases as T grows.
  EXPECT_LT(r.time_averaged_regret[399], r.time_averaged_regret[50]);
  EXPECT_LT(r.final_loss_gap, r.regret.front());
  EXPECT_EQ(r.total_rounds, 20u * 400u);
}

TEST(ConvexTestbed, CmflConvergesWithFewerRounds) {
  ConvexTestbed tb(small_spec());
  core::AcceptAllFilter vanilla;
  const auto base = tb.run(400, core::Schedule::inv_sqrt(0.2), vanilla);
  core::CmflFilter cmfl(core::Schedule::inv_sqrt(0.5));
  const auto filtered = tb.run(400, core::Schedule::inv_sqrt(0.2), cmfl);
  EXPECT_LT(filtered.total_rounds, base.total_rounds);
  // Convergence preserved: the time-averaged regret still decays...
  EXPECT_LT(filtered.time_averaged_regret[399],
            filtered.time_averaged_regret[50]);
  // ...and the final gap is within a small factor of vanilla's.
  EXPECT_LT(filtered.final_loss_gap, base.final_loss_gap * 10 + 0.5);
}

TEST(ConvexTestbed, DecayingScheduleBeatsConstantLr) {
  ConvexTestbedSpec spec = small_spec();
  spec.gradient_noise = 0.3;  // noise floor matters for constant lr
  ConvexTestbed tb(spec);
  core::AcceptAllFilter filter;
  const auto decayed = tb.run(600, core::Schedule::inv_sqrt(0.2), filter);
  const auto constant = tb.run(600, core::Schedule::constant(0.2), filter);
  EXPECT_LT(decayed.final_loss_gap, constant.final_loss_gap);
}

TEST(ConvexTestbed, Validation) {
  ConvexTestbedSpec bad = small_spec();
  bad.clients = 0;
  EXPECT_THROW(ConvexTestbed{bad}, std::invalid_argument);
  ConvexTestbed tb(small_spec());
  std::vector<float> wrong(3);
  EXPECT_THROW(tb.global_loss(wrong), std::invalid_argument);
}

TEST(ConvexTestbed, DeterministicPerSeed) {
  ConvexTestbed a(small_spec());
  ConvexTestbed b(small_spec());
  core::AcceptAllFilter filter;
  const auto ra = a.run(50, core::Schedule::inv_sqrt(0.2), filter);
  const auto rb = b.run(50, core::Schedule::inv_sqrt(0.2), filter);
  EXPECT_EQ(ra.regret, rb.regret);
}

}  // namespace
}  // namespace cmfl::fl

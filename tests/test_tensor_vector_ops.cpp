#include "tensor/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cmfl::tensor {
namespace {

TEST(VectorOps, AxpyAccumulates) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  std::vector<float> y = {10.0f, 20.0f, 30.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
}

TEST(VectorOps, AxpySizeMismatchThrows) {
  std::vector<float> x = {1.0f};
  std::vector<float> y = {1.0f, 2.0f};
  EXPECT_THROW(axpy(1.0f, x, y), std::invalid_argument);
}

TEST(VectorOps, DotProduct) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  std::vector<float> y = {4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, Norms) {
  std::vector<float> x = {3.0f, -4.0f};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm1(x), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(VectorOps, NormsOfEmpty) {
  std::vector<float> x;
  EXPECT_DOUBLE_EQ(norm2(x), 0.0);
  EXPECT_DOUBLE_EQ(norm1(x), 0.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 0.0);
}

TEST(VectorOps, SubAndAdd) {
  std::vector<float> x = {5.0f, 7.0f};
  std::vector<float> y = {2.0f, 10.0f};
  std::vector<float> z(2);
  sub(x, y, z);
  EXPECT_FLOAT_EQ(z[0], 3.0f);
  EXPECT_FLOAT_EQ(z[1], -3.0f);
  add(x, y, z);
  EXPECT_FLOAT_EQ(z[0], 7.0f);
  EXPECT_FLOAT_EQ(z[1], 17.0f);
}

TEST(VectorOps, SignConvention) {
  EXPECT_EQ(sign(2.5f), 1);
  EXPECT_EQ(sign(-0.1f), -1);
  EXPECT_EQ(sign(0.0f), 0);
  EXPECT_EQ(sign(-0.0f), 0);
}

TEST(VectorOps, CountSignMatchesBasic) {
  std::vector<float> x = {1.0f, -2.0f, 0.0f, 3.0f};
  std::vector<float> y = {5.0f, -1.0f, 0.0f, -3.0f};
  // matches: +/+, -/-, 0/0; mismatch: +/-
  EXPECT_EQ(count_sign_matches(x, y), 3u);
}

TEST(VectorOps, CountSignMatchesZeroVsNonzero) {
  std::vector<float> x = {0.0f, 0.0f};
  std::vector<float> y = {1.0f, -1.0f};
  EXPECT_EQ(count_sign_matches(x, y), 0u);
}

TEST(VectorOps, ClipBounds) {
  std::vector<float> x = {-5.0f, 0.5f, 9.0f};
  clip(x, 1.0f);
  EXPECT_FLOAT_EQ(x[0], -1.0f);
  EXPECT_FLOAT_EQ(x[1], 0.5f);
  EXPECT_FLOAT_EQ(x[2], 1.0f);
}

TEST(VectorOps, ClipRejectsNonPositiveLimit) {
  std::vector<float> x = {1.0f};
  EXPECT_THROW(clip(x, 0.0f), std::invalid_argument);
  EXPECT_THROW(clip(x, -1.0f), std::invalid_argument);
}

TEST(VectorOps, MeanAndFillAndScaleAndCopy) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  EXPECT_DOUBLE_EQ(mean(x), 2.0);
  scale(x, 2.0f);
  EXPECT_FLOAT_EQ(x[1], 4.0f);
  std::vector<float> y(3);
  copy(x, y);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
  fill(y, -1.0f);
  EXPECT_DOUBLE_EQ(mean(y), -1.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<float>{}), 0.0);
}

// Property sweep: ||x||_inf <= ||x||_2 <= ||x||_1 for random vectors.
class NormOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(NormOrderingTest, NormInequalitiesHold) {
  const int seed = GetParam();
  std::vector<float> x(64);
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
  for (auto& v : x) {
    state = state * 1664525u + 1013904223u;
    v = static_cast<float>(static_cast<int>(state % 2001) - 1000) / 100.0f;
  }
  const double n1 = norm1(x), n2 = norm2(x), ni = norm_inf(x);
  EXPECT_LE(ni, n2 + 1e-9);
  EXPECT_LE(n2, n1 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormOrderingTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace cmfl::tensor

// sched::WorkStealingPool: exactly-once execution at every (n, threads)
// shape, forced steals under a blocked straggler, error propagation through
// the barrier, and the non-reentrancy guard.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "sched/work_pool.h"

namespace cmfl::sched {
namespace {

TEST(WorkStealingPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    WorkStealingPool pool(threads);
    EXPECT_EQ(pool.threads(), threads);
    for (const std::size_t n : {0u, 1u, 3u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      pool.run(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads " << threads << " n " << n
                                     << " index " << i;
      }
    }
  }
}

TEST(WorkStealingPool, PoolIsReusableAcrossRuns) {
  WorkStealingPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.run(50, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 50u * 49u / 2u);
  }
}

TEST(WorkStealingPool, StragglerTailIsStolen) {
  // Two workers, 100 jobs: the caller owns [0, 50), the worker [50, 100).
  // Job 0 blocks until every *other* job has completed — the caller can
  // never run [1, 50) itself, so the worker must steal that tail for run()
  // to return at all.  Termination of this test is therefore itself the
  // proof of stealing; the counter must agree.
  WorkStealingPool pool(2);
  const std::uint64_t steals_before = pool.steals();
  std::mutex mu;
  std::condition_variable cv;
  std::size_t others_done = 0;
  pool.run(100, [&](std::size_t i) {
    if (i == 0) {
      std::unique_lock lock(mu);
      cv.wait(lock, [&] { return others_done == 99; });
      return;
    }
    std::lock_guard lock(mu);
    ++others_done;
    cv.notify_all();
  });
  EXPECT_GE(pool.steals() - steals_before, 1u);
}

TEST(WorkStealingPool, FirstErrorIsRethrownAfterAllJobsRan) {
  WorkStealingPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(
      pool.run(64,
               [&](std::size_t i) {
                 hits[i].fetch_add(1, std::memory_order_relaxed);
                 if (i % 13 == 5) throw std::runtime_error("job failed");
               }),
      std::runtime_error);
  // The barrier completes the whole batch before rethrowing.
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // The pool recovers: the next run is clean.
  std::atomic<std::size_t> count{0};
  pool.run(10, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10u);
}

TEST(WorkStealingPool, RunIsNotReentrant) {
  WorkStealingPool pool(2);
  EXPECT_THROW(pool.run(1,
                        [&](std::size_t) {
                          pool.run(1, [](std::size_t) {});
                        }),
               std::logic_error);
}

}  // namespace
}  // namespace cmfl::sched

// End-to-end federated training on a small MLP workload: convergence,
// communication accounting, filter behaviour, determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/filter.h"
#include "fl/convex_testbed.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "fl/workloads.h"

namespace cmfl::fl {
namespace {

DigitsMlpSpec small_spec() {
  DigitsMlpSpec spec;
  spec.clients = 10;
  spec.train_samples = 300;
  spec.test_samples = 120;
  spec.hidden = {24};
  spec.digits.image_size = 8;
  spec.digits.samples = 0;  // overwritten by the workload builder
  spec.seed = 42;
  return spec;
}

SimulationOptions fast_options() {
  SimulationOptions opt;
  opt.local_epochs = 2;
  opt.batch_size = 5;
  opt.learning_rate = core::Schedule::constant(0.15);
  opt.max_iterations = 60;
  opt.eval_every = 5;
  return opt;
}

SimulationResult run_with_filter(std::unique_ptr<core::UpdateFilter> filter,
                                 SimulationOptions opt,
                                 DigitsMlpSpec spec = small_spec()) {
  Workload w = make_digits_mlp_workload(spec);
  FederatedSimulation sim(std::move(w.clients), std::move(filter),
                          w.evaluator, opt);
  return sim.run();
}

TEST(FederatedSimulation, VanillaConverges) {
  const SimulationResult r =
      run_with_filter(std::make_unique<core::AcceptAllFilter>(),
                      fast_options());
  EXPECT_GT(r.final_accuracy, 0.5);  // 10-class task, chance is 0.1
  // Vanilla uploads every client every iteration.
  EXPECT_EQ(r.total_rounds, 10u * r.history.size());
  for (const auto& rec : r.history) EXPECT_EQ(rec.uploads, 10u);
}

TEST(FederatedSimulation, CumulativeRoundsMonotone) {
  const SimulationResult r =
      run_with_filter(std::make_unique<core::AcceptAllFilter>(),
                      fast_options());
  std::size_t prev = 0;
  for (const auto& rec : r.history) {
    EXPECT_GE(rec.cumulative_rounds, prev);
    EXPECT_EQ(rec.cumulative_rounds, prev + rec.uploads);
    prev = rec.cumulative_rounds;
  }
}

TEST(FederatedSimulation, CmflUploadsFewerRounds) {
  auto opt = fast_options();
  const SimulationResult vanilla =
      run_with_filter(std::make_unique<core::AcceptAllFilter>(), opt);
  // Threshold slightly below the relevance median keeps roughly the aligned
  // half of clients uploading each round.
  const SimulationResult cmfl = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.45)),
      opt);
  EXPECT_LT(cmfl.total_rounds, vanilla.total_rounds);
  // Filtering must not destroy learning on this easy task.
  EXPECT_GT(cmfl.final_accuracy, 0.4);
}

TEST(FederatedSimulation, CmflEliminationsAreRecorded) {
  const SimulationResult cmfl = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.6)),
      fast_options());
  std::size_t eliminated = 0;
  for (std::size_t e : cmfl.eliminations_per_client) eliminated += e;
  EXPECT_GT(eliminated, 0u);
  // uploads + eliminations == clients * iterations
  EXPECT_EQ(cmfl.total_rounds + eliminated, 10u * cmfl.history.size());
}

TEST(FederatedSimulation, DeterministicAcrossRuns) {
  auto opt = fast_options();
  opt.max_iterations = 10;
  const SimulationResult a = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.4)), opt);
  const SimulationResult b = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.4)), opt);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].uploads, b.history[i].uploads);
    EXPECT_DOUBLE_EQ(a.history[i].mean_score, b.history[i].mean_score);
  }
  EXPECT_EQ(a.final_params, b.final_params);
}

TEST(FederatedSimulation, SerialAndParallelAgree) {
  auto opt = fast_options();
  opt.max_iterations = 8;
  opt.parallel = false;
  const SimulationResult serial = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.4)), opt);
  opt.parallel = true;
  const SimulationResult parallel = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.4)), opt);
  EXPECT_EQ(serial.final_params, parallel.final_params);
  EXPECT_EQ(serial.total_rounds, parallel.total_rounds);
}

TEST(FederatedSimulation, TargetAccuracyStopsEarly) {
  auto opt = fast_options();
  opt.max_iterations = 200;
  opt.target_accuracy = 0.3;  // easy target
  const SimulationResult r =
      run_with_filter(std::make_unique<core::AcceptAllFilter>(), opt);
  EXPECT_LT(r.history.size(), 200u);
  EXPECT_GE(r.final_accuracy, 0.3);
}

TEST(FederatedSimulation, MinUploadsRescuesStarvedRound) {
  auto opt = fast_options();
  opt.max_iterations = 6;
  opt.min_uploads = 2;
  // Threshold 1.0 rejects everything after the cold-start round, forcing
  // the min_uploads path.
  const SimulationResult r = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(1.01)),
      opt);
  for (const auto& rec : r.history) {
    if (rec.iteration > 1) {
      EXPECT_EQ(rec.uploads, 2u);
    }
  }
}

TEST(IterationRecord, EvaluatedChecksBothMetrics) {
  IterationRecord rec;
  EXPECT_FALSE(rec.evaluated());  // both NaN: never evaluated
  rec.loss = 1.5;                 // diverged eval: NaN accuracy, finite loss
  EXPECT_TRUE(rec.evaluated());
  rec.loss = std::numeric_limits<double>::quiet_NaN();
  rec.accuracy = 0.5;             // the converse corner
  EXPECT_TRUE(rec.evaluated());
}

TEST(FederatedSimulation, NonFiniteLossNeverTriggersEarlyStop) {
  // An evaluator that reports a flattering accuracy alongside a NaN loss
  // models a numerically diverged model scoring well by luck on a tiny test
  // set.  target_accuracy must ignore such rounds and run to completion.
  auto opt = fast_options();
  opt.max_iterations = 8;
  opt.eval_every = 2;
  opt.target_accuracy = 0.5;
  Workload w = make_digits_mlp_workload(small_spec());
  GlobalEvaluator lying_evaluator = [](std::span<const float>) {
    nn::EvalResult r;
    r.accuracy = 1.0;
    r.loss = std::numeric_limits<double>::quiet_NaN();
    return r;
  };
  FederatedSimulation sim(std::move(w.clients),
                          std::make_unique<core::AcceptAllFilter>(),
                          lying_evaluator, opt);
  const SimulationResult r = sim.run();
  EXPECT_EQ(r.history.size(), 8u);  // no early stop despite accuracy = 1.0
}

TEST(FederatedSimulation, MinUploadsComposesWithSampleWeighting) {
  // S3 regression: the min_uploads rescue path must hand the sample-weighted
  // aggregator a weight per forced upload, not a stale weight vector.
  auto opt = fast_options();
  opt.max_iterations = 6;
  opt.min_uploads = 2;
  opt.aggregation = Aggregation::kSampleWeighted;
  // Threshold > 1 rejects every natural upload after the cold-start round.
  const SimulationResult r = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(1.01)),
      opt);
  ASSERT_EQ(r.history.size(), 6u);
  std::size_t expected_rounds = 0;
  for (const auto& rec : r.history) {
    if (rec.iteration > 1) EXPECT_EQ(rec.uploads, 2u);
    expected_rounds += rec.uploads;
    for (float p : r.final_params) ASSERT_TRUE(std::isfinite(p));
  }
  EXPECT_EQ(r.total_rounds, expected_rounds);
}

TEST(FederatedSimulation, ConstructorValidation) {
  Workload w = make_digits_mlp_workload(small_spec());
  SimulationOptions opt = fast_options();
  EXPECT_THROW(FederatedSimulation({}, std::make_unique<core::AcceptAllFilter>(),
                                   w.evaluator, opt),
               std::invalid_argument);
  Workload w2 = make_digits_mlp_workload(small_spec());
  EXPECT_THROW(
      FederatedSimulation(std::move(w2.clients), nullptr, w2.evaluator, opt),
      std::invalid_argument);
}

TEST(Metrics, SavingAndRows) {
  auto opt = fast_options();
  const SimulationResult vanilla =
      run_with_filter(std::make_unique<core::AcceptAllFilter>(), opt);
  const SimulationResult cmfl = run_with_filter(
      std::make_unique<core::CmflFilter>(core::Schedule::constant(0.5)), opt);
  const double a = 0.3;
  const auto s = saving(vanilla, cmfl, a);
  if (vanilla.rounds_to_accuracy(a) && cmfl.rounds_to_accuracy(a)) {
    ASSERT_TRUE(s.has_value());
    EXPECT_GT(*s, 0.0);
  }
  const SavingRow row = make_saving_row("digits_mlp", a, vanilla, cmfl);
  EXPECT_EQ(row.workload, "digits_mlp");
  // Unreachable accuracy yields nullopt everywhere.
  EXPECT_FALSE(saving(vanilla, cmfl, 1.01).has_value());
}

TEST(Metrics, AccuracyCurveOnlyEvaluatedPoints) {
  const SimulationResult r =
      run_with_filter(std::make_unique<core::AcceptAllFilter>(),
                      fast_options());
  const auto curve = accuracy_curve(r);
  std::size_t evaluated = 0;
  for (const auto& rec : r.history) evaluated += rec.evaluated();
  EXPECT_EQ(curve.size(), evaluated);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].rounds, curve[i - 1].rounds);
  }
}

TEST(Metrics, BestRunIndexPicksCheapest) {
  SimulationResult a, b;
  IterationRecord ra;
  ra.iteration = 1;
  ra.cumulative_rounds = 100;
  ra.accuracy = 0.9;
  a.history.push_back(ra);
  a.final_accuracy = 0.9;
  IterationRecord rb = ra;
  rb.cumulative_rounds = 50;
  b.history.push_back(rb);
  b.final_accuracy = 0.9;
  EXPECT_EQ(best_run_index({a, b}, 0.8), 1u);
  // Nobody reaches 0.95: falls back to highest final accuracy.
  b.final_accuracy = 0.91;
  EXPECT_EQ(best_run_index({a, b}, 0.95), 1u);
  // Sustained gating: a run that touched the target but collapsed by the
  // end does not qualify; the slower-but-stable run wins.
  SimulationResult collapsed = b;
  collapsed.history[0].cumulative_rounds = 10;  // cheapest touch
  collapsed.final_accuracy = 0.2;
  EXPECT_EQ(best_run_index({a, collapsed}, 0.8), 0u);
  EXPECT_EQ(best_run_index({a, collapsed}, 0.8, /*require_sustained=*/false),
            1u);
  EXPECT_THROW(best_run_index({}, 0.5), std::invalid_argument);
}

TEST(FederatedSimulation, NonSampledClientsDoNoLocalWork) {
  // Regression test for the lazy-participation contract: with a per-round
  // cohort, a client the sampler never picked must run zero optimization
  // steps (no eager training it throws away).  ConvexClient counts its
  // gradient steps in lifetime_steps(), so the expected total per client is
  // exactly (participated rounds) × epochs × local_steps.
  ConvexTestbedSpec spec;
  spec.clients = 8;
  spec.dim = 6;
  spec.local_steps = 3;
  spec.seed = 77;
  ConvexWorkload w = make_convex_workload(spec);

  std::vector<const FlClient*> observers;
  observers.reserve(w.clients.size());
  for (const auto& c : w.clients) observers.push_back(c.get());

  SimulationOptions opt;
  opt.local_epochs = 2;
  opt.batch_size = 1;
  opt.learning_rate = core::Schedule::constant(0.05);
  opt.max_iterations = 5;
  opt.eval_every = 5;
  opt.schedule.sample_size = 3;  // 3-of-8 cohort per round
  FederatedSimulation sim(std::move(w.clients),
                          std::make_unique<core::AcceptAllFilter>(),
                          w.evaluator, opt);
  const SimulationResult r = sim.run();

  const std::uint64_t steps_per_participation =
      static_cast<std::uint64_t>(opt.local_epochs) *
      static_cast<std::uint64_t>(spec.local_steps);
  ASSERT_EQ(r.uploads_per_client.size(), observers.size());
  std::uint64_t participant_total = 0;
  for (std::size_t i = 0; i < observers.size(); ++i) {
    const std::uint64_t participations =
        r.uploads_per_client[i] + r.eliminations_per_client[i];
    EXPECT_EQ(observers[i]->lifetime_steps(),
              participations * steps_per_participation)
        << "client " << i;
    participant_total += participations;
  }
  // 3 sampled clients per round, every one either uploads or is eliminated.
  EXPECT_EQ(participant_total, 3u * opt.max_iterations);
}

}  // namespace
}  // namespace cmfl::fl

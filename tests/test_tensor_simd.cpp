// Accuracy-gated equivalence tests for the AVX2/FMA fast tier
// (tensor/kernels_simd.h, DESIGN.md §13).
//
// The fast tier is not bit-identical to the exact tier — it fuses
// multiply-adds and, for dot-product-shaped kernels, reduces in 8 partial
// lanes.  Both the exact result and the fast result are instances of
// "sum the k products in *some* order, each op correctly rounded", so each
// is within γ_k·Σ|aᵢ||bᵢ| of the true real-arithmetic value, where
// γ_k = k·ε/(1−k·ε) and ε = 2⁻²⁴ (see Higham, Accuracy and Stability of
// Numerical Algorithms, §3.1).  The triangle inequality then bounds the
// tier gap per output element:
//
//     |fast − exact| ≤ 2·γ_k·Σ|aᵢ||bᵢ|
//
// These tests assert that bound elementwise on every fast-tier kernel, on
// adversarial sizes (1, 3, 17, 63, 65, and non-multiple-of-8 column counts
// that stress the vector tails).  Kernels whose fast path keeps the exact
// per-element operation sequence (rowmajor add_col_sums, scaled_sum,
// SignPack) are asserted *bit-identical* instead.  A final suite pins the
// determinism contract: a forced tier plus a seed is bit-identical across
// runs and across thread counts.
//
// Everything here SKIPs (not passes) when the host lacks AVX2+FMA.
#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/vector_ops.h"
#include "util/rng.h"

namespace cmfl::tensor {
namespace {

using kernels::Tier;

/// RAII tier pin; restores the previous setting on failure/skip paths too.
struct TierGuard {
  Tier prev;
  explicit TierGuard(Tier t) : prev(kernels::tier()) { kernels::set_tier(t); }
  ~TierGuard() { kernels::set_tier(prev); }
};

#define SKIP_WITHOUT_FAST_TIER()                                   \
  if (!kernels::fast_tier_available()) {                           \
    GTEST_SKIP() << "AVX2+FMA not available; fast tier untested";  \
  }

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-1.0f, 1.0f);
  return v;
}

/// γ_k = k·ε/(1−k·ε), the standard summation error constant for float.
double gamma_k(std::size_t k) {
  const double eps = std::ldexp(1.0, -24);
  const double ke = static_cast<double>(k) * eps;
  return ke / (1.0 - ke);
}

/// Asserts |fast − exact| ≤ 2·γ_k·abs_mag elementwise.  abs_mag[i] must be
/// Σ|terms| feeding output element i (computed in double by the caller).
void expect_ulp_bounded(std::span<const float> fast,
                        std::span<const float> exact,
                        std::span<const double> abs_mag, std::size_t k,
                        const char* what) {
  ASSERT_EQ(fast.size(), exact.size());
  ASSERT_EQ(fast.size(), abs_mag.size());
  // +8 covers the lane reduction and the final rounding of hsum paths.
  const double g = 2.0 * gamma_k(k + 8);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    const double diff =
        std::fabs(static_cast<double>(fast[i]) - static_cast<double>(exact[i]));
    ASSERT_LE(diff, g * abs_mag[i] + 1e-30)
        << what << " element " << i << ": fast=" << fast[i]
        << " exact=" << exact[i] << " bound=" << g * abs_mag[i];
  }
}

struct GemmShape {
  std::size_t m, k, n;
};

// The ISSUE-mandated odd/tail sizes: 1, 3, 17, 63, 65, and column counts
// that are not multiples of 8 (the ymm lane width) nor of the 16-wide
// register tile.
const GemmShape kShapes[] = {
    {1, 1, 1},    {1, 3, 17},   {3, 17, 63},  {17, 65, 3},  {63, 63, 63},
    {65, 64, 65}, {4, 256, 16}, {5, 100, 33}, {33, 17, 130}, {2, 1025, 7},
};

TEST(SimdGemm, NNWithinUlpBoundOfExactTier) {
  SKIP_WITHOUT_FAST_TIER();
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.m * s.k, 100 + s.m);
    const auto b = random_vec(s.k * s.n, 200 + s.n);
    std::vector<float> exact(s.m * s.n), fast(s.m * s.n);
    {
      TierGuard g(Tier::kExact);
      kernels::gemm_nn(a.data(), b.data(), exact.data(), s.m, s.k, s.n, 0,
                       s.m);
    }
    {
      TierGuard g(Tier::kFast);
      kernels::gemm_nn(a.data(), b.data(), fast.data(), s.m, s.k, s.n, 0, s.m);
    }
    std::vector<double> mag(s.m * s.n, 0.0);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t kk = 0; kk < s.k; ++kk) {
        const double av = std::fabs(static_cast<double>(a[i * s.k + kk]));
        for (std::size_t j = 0; j < s.n; ++j) {
          mag[i * s.n + j] +=
              av * std::fabs(static_cast<double>(b[kk * s.n + j]));
        }
      }
    }
    expect_ulp_bounded(fast, exact, mag, s.k, "gemm_nn");
  }
}

TEST(SimdGemm, NNAccPreloadedCWithinUlpBound) {
  SKIP_WITHOUT_FAST_TIER();
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.m * s.k, 300 + s.m);
    const auto b = random_vec(s.k * s.n, 400 + s.n);
    const auto c0 = random_vec(s.m * s.n, 500 + s.m + s.n);
    std::vector<float> exact = c0, fast = c0;
    {
      TierGuard g(Tier::kExact);
      kernels::gemm_nn_acc(a.data(), b.data(), exact.data(), s.m, s.k, s.n, 0,
                           s.m);
    }
    {
      TierGuard g(Tier::kFast);
      kernels::gemm_nn_acc(a.data(), b.data(), fast.data(), s.m, s.k, s.n, 0,
                           s.m);
    }
    std::vector<double> mag(s.m * s.n);
    for (std::size_t i = 0; i < s.m * s.n; ++i) {
      mag[i] = std::fabs(static_cast<double>(c0[i]));
    }
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t kk = 0; kk < s.k; ++kk) {
        const double av = std::fabs(static_cast<double>(a[i * s.k + kk]));
        for (std::size_t j = 0; j < s.n; ++j) {
          mag[i * s.n + j] +=
              av * std::fabs(static_cast<double>(b[kk * s.n + j]));
        }
      }
    }
    expect_ulp_bounded(fast, exact, mag, s.k + 1, "gemm_nn_acc");
  }
}

TEST(SimdGemm, TNWithinUlpBound) {
  SKIP_WITHOUT_FAST_TIER();
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.k * s.m, 600 + s.m);  // (k×m) transposed-left
    const auto b = random_vec(s.k * s.n, 700 + s.n);
    std::vector<float> exact(s.m * s.n), fast(s.m * s.n);
    {
      TierGuard g(Tier::kExact);
      kernels::gemm_tn(a.data(), b.data(), exact.data(), s.m, s.k, s.n, 0,
                       s.m);
    }
    {
      TierGuard g(Tier::kFast);
      kernels::gemm_tn(a.data(), b.data(), fast.data(), s.m, s.k, s.n, 0, s.m);
    }
    std::vector<double> mag(s.m * s.n, 0.0);
    for (std::size_t kk = 0; kk < s.k; ++kk) {
      for (std::size_t i = 0; i < s.m; ++i) {
        const double av = std::fabs(static_cast<double>(a[kk * s.m + i]));
        for (std::size_t j = 0; j < s.n; ++j) {
          mag[i * s.n + j] +=
              av * std::fabs(static_cast<double>(b[kk * s.n + j]));
        }
      }
    }
    expect_ulp_bounded(fast, exact, mag, s.k, "gemm_tn");
  }
}

TEST(SimdGemm, NTWithinUlpBound) {
  SKIP_WITHOUT_FAST_TIER();
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.m * s.k, 800 + s.m);
    const auto b = random_vec(s.n * s.k, 900 + s.n);
    std::vector<float> exact(s.m * s.n), fast(s.m * s.n);
    {
      TierGuard g(Tier::kExact);
      kernels::gemm_nt(a.data(), b.data(), exact.data(), s.m, s.k, s.n, 0,
                       s.m);
    }
    {
      TierGuard g(Tier::kFast);
      kernels::gemm_nt(a.data(), b.data(), fast.data(), s.m, s.k, s.n, 0, s.m);
    }
    std::vector<double> mag(s.m * s.n, 0.0);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        double acc = 0.0;
        for (std::size_t kk = 0; kk < s.k; ++kk) {
          acc += std::fabs(static_cast<double>(a[i * s.k + kk])) *
                 std::fabs(static_cast<double>(b[j * s.k + kk]));
        }
        mag[i * s.n + j] = acc;
      }
    }
    expect_ulp_bounded(fast, exact, mag, s.k, "gemm_nt");
  }
}

TEST(SimdGemm, GemvWithinUlpBound) {
  SKIP_WITHOUT_FAST_TIER();
  for (const auto& s : kShapes) {
    const auto a = random_vec(s.m * s.n, 1000 + s.m);
    const auto x = random_vec(s.n, 1100 + s.n);
    std::vector<float> exact(s.m), fast(s.m);
    {
      TierGuard g(Tier::kExact);
      kernels::gemv(a.data(), x.data(), exact.data(), s.m, s.n, 0, s.m);
    }
    {
      TierGuard g(Tier::kFast);
      kernels::gemv(a.data(), x.data(), fast.data(), s.m, s.n, 0, s.m);
    }
    std::vector<double> mag(s.m, 0.0);
    for (std::size_t i = 0; i < s.m; ++i) {
      for (std::size_t j = 0; j < s.n; ++j) {
        mag[i] += std::fabs(static_cast<double>(a[i * s.n + j])) *
                  std::fabs(static_cast<double>(x[j]));
      }
    }
    expect_ulp_bounded(fast, exact, mag, s.n, "gemv");
  }
}

// --- add_col_sums -----------------------------------------------------------

TEST(SimdColSums, RowMajorFormBitIdenticalToExact) {
  // col_stride == 1: each output column is an independent vector lane and
  // the fast path adds rows in the same order — bit-identical by design.
  SKIP_WITHOUT_FAST_TIER();
  for (std::size_t rows : {1u, 3u, 17u, 64u}) {
    for (std::size_t cols : {1u, 3u, 17u, 63u, 65u, 130u}) {
      const auto m = random_vec(rows * cols, rows * 131 + cols);
      std::vector<float> exact(cols, 0.5f), fast(cols, 0.5f);
      {
        TierGuard g(Tier::kExact);
        kernels::add_col_sums(m.data(), rows, cols, cols, 1, exact);
      }
      {
        TierGuard g(Tier::kFast);
        kernels::add_col_sums(m.data(), rows, cols, cols, 1, fast);
      }
      ASSERT_EQ(fast, exact) << rows << "x" << cols;
    }
  }
}

TEST(SimdColSums, StridedColwiseFormWithinUlpBound) {
  // row_stride == 1 (the im2col gradient view): the fast path reduces each
  // column in 8 partial lanes, so it is ULP-bounded, not bit-identical.
  SKIP_WITHOUT_FAST_TIER();
  for (std::size_t rows : {1u, 3u, 17u, 63u, 65u, 144u}) {
    for (std::size_t cols : {1u, 3u, 8u}) {
      const auto m = random_vec(rows * cols, rows * 37 + cols);
      std::vector<float> exact(cols, -0.25f), fast(cols, -0.25f);
      {
        TierGuard g(Tier::kExact);
        kernels::add_col_sums(m.data(), rows, cols, 1, rows, exact);
      }
      {
        TierGuard g(Tier::kFast);
        kernels::add_col_sums(m.data(), rows, cols, 1, rows, fast);
      }
      std::vector<double> mag(cols, 0.25);
      for (std::size_t j = 0; j < cols; ++j) {
        for (std::size_t i = 0; i < rows; ++i) {
          mag[j] += std::fabs(static_cast<double>(m[j * rows + i]));
        }
      }
      expect_ulp_bounded(fast, exact, mag, rows + 1, "add_col_sums colwise");
    }
  }
}

// --- fused aggregation ------------------------------------------------------

TEST(SimdAggregation, ScaledSumBitIdenticalToExact) {
  // Lane-independent, same k-increasing order, same final multiply: the
  // fast path must be bit-identical (the server aggregate feeds the golden
  // digests, so this is load-bearing for reproducibility).
  SKIP_WITHOUT_FAST_TIER();
  for (std::size_t d : {1u, 3u, 17u, 63u, 65u, 1000u, 4099u}) {
    std::vector<std::vector<float>> updates;
    for (std::size_t c = 0; c < 5; ++c) updates.push_back(random_vec(d, d + c));
    std::vector<std::span<const float>> views(updates.begin(), updates.end());
    std::vector<float> exact(d), fast(d);
    {
      TierGuard g(Tier::kExact);
      kernels::scaled_sum(views, 0.2f, exact);
    }
    {
      TierGuard g(Tier::kFast);
      kernels::scaled_sum(views, 0.2f, fast);
    }
    ASSERT_EQ(fast, exact) << "d=" << d;
  }
}

TEST(SimdAggregation, WeightedSumWithinUlpBound) {
  // FMA contraction only (same order), so the γ bound applies with k equal
  // to the client count.
  SKIP_WITHOUT_FAST_TIER();
  for (std::size_t d : {1u, 3u, 17u, 63u, 65u, 1000u}) {
    const std::size_t clients = 7;
    std::vector<std::vector<float>> updates;
    std::vector<float> w;
    for (std::size_t c = 0; c < clients; ++c) {
      updates.push_back(random_vec(d, 3 * d + c));
      w.push_back(0.05f * static_cast<float>(c + 1));
    }
    std::vector<std::span<const float>> views(updates.begin(), updates.end());
    std::vector<float> exact(d), fast(d);
    {
      TierGuard g(Tier::kExact);
      kernels::weighted_sum(views, w, exact);
    }
    {
      TierGuard g(Tier::kFast);
      kernels::weighted_sum(views, w, fast);
    }
    std::vector<double> mag(d, 0.0);
    for (std::size_t c = 0; c < clients; ++c) {
      for (std::size_t i = 0; i < d; ++i) {
        mag[i] += std::fabs(static_cast<double>(w[c])) *
                  std::fabs(static_cast<double>(updates[c][i]));
      }
    }
    expect_ulp_bounded(fast, exact, mag, clients, "weighted_sum");
  }
}

// --- SignPack ---------------------------------------------------------------

std::vector<float> sign_edge_cases() {
  const float denorm = std::numeric_limits<float>::denorm_min();
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  return {0.0f, -0.0f, denorm, -denorm, 1.0f,    -1.0f,   nan,
          -nan, inf,   -inf,   1e-38f,  -1e-38f, 0.0f,    3.5f};
}

TEST(SimdSignPack, EdgeCasesPackBitIdenticalToExactTier) {
  // SIMD packing is pure IEEE-754 bit classification — it must reproduce
  // the scalar three-way sign() word-for-word, including ±0, denormals,
  // NaN (both signs) and ±inf.
  SKIP_WITHOUT_FAST_TIER();
  auto edge = sign_edge_cases();
  // Tile the edge cases across word boundaries so full SIMD words (64
  // elements) contain every class, not just the scalar tail.
  std::vector<float> v;
  for (int rep = 0; rep < 13; ++rep) {
    v.insert(v.end(), edge.begin(), edge.end());
  }
  SignPack exact_pack, fast_pack;
  {
    TierGuard g(Tier::kExact);
    exact_pack.assign(v);
  }
  {
    TierGuard g(Tier::kFast);
    fast_pack.assign(v);
  }
  ASSERT_EQ(exact_pack.size(), fast_pack.size());
  const auto en = exact_pack.nonzero_words(), fn = fast_pack.nonzero_words();
  const auto eg = exact_pack.negative_words(), fg = fast_pack.negative_words();
  for (std::size_t w = 0; w < en.size(); ++w) {
    ASSERT_EQ(fn[w], en[w]) << "nonzero word " << w;
    ASSERT_EQ(fg[w], eg[w]) << "negative word " << w;
  }
}

TEST(SimdSignPack, MatchCountsEqualScalarAcrossSizes) {
  SKIP_WITHOUT_FAST_TIER();
  TierGuard g(Tier::kFast);
  for (std::size_t n : {1u, 3u, 17u, 63u, 64u, 65u, 127u, 1000u, 4097u}) {
    util::Rng rng(n * 7 + 1);
    std::vector<float> x(n), y(n);
    for (auto& v : x) {
      v = rng.uniform() < 0.25 ? 0.0f : rng.uniform_f(-1.0f, 1.0f);
    }
    for (auto& v : y) {
      v = rng.uniform() < 0.25 ? 0.0f : rng.uniform_f(-1.0f, 1.0f);
    }
    const std::size_t scalar = count_sign_matches(x, y);  // never dispatches
    EXPECT_EQ(count_sign_matches(SignPack(x), SignPack(y)), scalar) << n;
    EXPECT_EQ(count_sign_matches(x, SignPack(y)), scalar) << n;
  }
}

// --- determinism contract ---------------------------------------------------

TEST(SimdDeterminism, ForcedFastTierBitIdenticalAcrossRuns) {
  SKIP_WITHOUT_FAST_TIER();
  TierGuard g(Tier::kFast);
  const std::size_t n = 96;
  const auto a = random_vec(n * n, 1), b = random_vec(n * n, 2);
  std::vector<float> r1(n * n), r2(n * n);
  kernels::gemm_nn(a.data(), b.data(), r1.data(), n, n, n, 0, n);
  kernels::gemm_nn(a.data(), b.data(), r2.data(), n, n, n, 0, n);
  EXPECT_EQ(r1, r2);
}

TEST(SimdDeterminism, FastTierRowRangesComposeExactly) {
  // The invariant the thread-parallel conv/matmul paths rely on, in the
  // fast tier: per-element accumulation order never depends on [i0, i1).
  SKIP_WITHOUT_FAST_TIER();
  TierGuard g(Tier::kFast);
  const std::size_t m = 37, k = 129, n = 65;
  const auto a = random_vec(m * k, 3), b = random_vec(k * n, 4);
  std::vector<float> whole(m * n), pieces(m * n);
  kernels::gemm_nn(a.data(), b.data(), whole.data(), m, k, n, 0, m);
  kernels::gemm_nn(a.data(), b.data(), pieces.data(), m, k, n, 0, 10);
  kernels::gemm_nn(a.data(), b.data(), pieces.data(), m, k, n, 10, 11);
  kernels::gemm_nn(a.data(), b.data(), pieces.data(), m, k, n, 11, m);
  EXPECT_EQ(whole, pieces);
}

TEST(SimdDeterminism, FastTierThreadCountInvariant) {
  // Same forced tier + seed ⇒ bit-identical results with 1 worker and with
  // 4 workers (matmul shards rows across the pool above the MAC threshold).
  SKIP_WITHOUT_FAST_TIER();
  TierGuard g(Tier::kFast);
  const std::size_t n = 256;  // 256³ MACs > kParallelMacThreshold
  Matrix a(n, n, random_vec(n * n, 5));
  Matrix b(n, n, random_vec(n * n, 6));
  const std::size_t prev = kernels::max_threads();
  Matrix serial(n, n), sharded(n, n);
  kernels::set_max_threads(1);
  matmul(a, b, serial);
  kernels::set_max_threads(4);
  matmul(a, b, sharded);
  kernels::set_max_threads(prev);
  for (std::size_t i = 0; i < serial.flat().size(); ++i) {
    ASSERT_EQ(serial.flat()[i], sharded.flat()[i]) << "index " << i;
  }
}

TEST(SimdDeterminism, ExactTierThreadCountInvariantStillHolds) {
  TierGuard g(Tier::kExact);
  const std::size_t n = 256;
  Matrix a(n, n, random_vec(n * n, 7));
  Matrix b(n, n, random_vec(n * n, 8));
  const std::size_t prev = kernels::max_threads();
  Matrix serial(n, n), sharded(n, n);
  kernels::set_max_threads(1);
  matmul(a, b, serial);
  kernels::set_max_threads(4);
  matmul(a, b, sharded);
  kernels::set_max_threads(prev);
  for (std::size_t i = 0; i < serial.flat().size(); ++i) {
    ASSERT_EQ(serial.flat()[i], sharded.flat()[i]) << "index " << i;
  }
}

TEST(SimdDispatch, TierIntrospection) {
  // active_tier() never reports kAuto, and forcing kFast on a machine
  // without the fast tier resolves to kExact rather than crashing.
  const Tier prev = kernels::tier();
  kernels::set_tier(Tier::kAuto);
  EXPECT_NE(kernels::active_tier(), Tier::kAuto);
  kernels::set_tier(Tier::kFast);
  if (kernels::fast_tier_available()) {
    EXPECT_EQ(kernels::active_tier(), Tier::kFast);
    EXPECT_STREQ(kernels::simd_level(), "avx2-fma");
  } else {
    EXPECT_EQ(kernels::active_tier(), Tier::kExact);
    EXPECT_STREQ(kernels::simd_level(), "scalar");
  }
  kernels::set_tier(Tier::kExact);
  EXPECT_EQ(kernels::active_tier(), Tier::kExact);
  kernels::set_tier(prev);
}

}  // namespace
}  // namespace cmfl::tensor

#include "core/compression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "util/rng.h"

namespace cmfl::core {
namespace {

std::vector<float> random_update(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-0.5f, 0.5f);
  return v;
}

TEST(IdentityCompressor, LosslessRoundTrip) {
  IdentityCompressor c;
  const auto u = random_update(257, 1);
  const auto enc = c.encode(u);
  EXPECT_EQ(enc.wire_bytes, 8 + 257 * 4);
  EXPECT_EQ(c.decode(enc), u);
}

TEST(IdentityCompressor, TruncationDetected) {
  IdentityCompressor c;
  auto enc = c.encode(random_update(16, 2));
  enc.payload.resize(enc.payload.size() - 5);
  EXPECT_THROW(c.decode(enc), std::runtime_error);
}

TEST(SubsampleCompressor, ShrinksWireSize) {
  SubsampleCompressor c(0.1, 3);
  const auto u = random_update(10000, 3);
  const auto enc = c.encode(u);
  // ~10% of coordinates at 8 bytes each + 16-byte header.
  EXPECT_LT(enc.wire_bytes, 10000 * 4 / 2);
  EXPECT_GT(enc.wire_bytes, 10000 / 20);
}

TEST(SubsampleCompressor, UnbiasedInExpectation) {
  // Average many independent encodings: the reconstruction must converge to
  // the original (the 1/keep rescaling makes subsampling unbiased).
  const auto u = random_update(64, 4);
  std::vector<double> acc(64, 0.0);
  const int trials = 3000;
  SubsampleCompressor c(0.25, 5);
  for (int t = 0; t < trials; ++t) {
    const auto dec = c.decode(c.encode(u));
    for (std::size_t i = 0; i < 64; ++i) acc[i] += dec[i];
  }
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(acc[i] / trials, u[i], 0.05);
  }
}

TEST(SubsampleCompressor, RejectsBadKeep) {
  EXPECT_THROW(SubsampleCompressor(0.0, 1), std::invalid_argument);
  EXPECT_THROW(SubsampleCompressor(1.5, 1), std::invalid_argument);
}

TEST(QuantizeCompressor, OneBytePerCoordinate) {
  QuantizeCompressor c(6);
  const auto u = random_update(1000, 6);
  const auto enc = c.encode(u);
  EXPECT_EQ(enc.wire_bytes, 8 + 4 + 4 + 1000);
}

TEST(QuantizeCompressor, BoundedError) {
  QuantizeCompressor c(7);
  const auto u = random_update(500, 7);
  const auto dec = c.decode(c.encode(u));
  // Max error is one quantization step = range/255.
  const float range = 1.0f;  // values in [-0.5, 0.5]
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(dec[i], u[i], range / 255.0f * 1.5f);
  }
}

TEST(QuantizeCompressor, StochasticRoundingUnbiased) {
  const std::vector<float> u = {0.1f, -0.3f, 0.42f, 0.0f, -0.5f, 0.5f};
  QuantizeCompressor c(8);
  std::vector<double> acc(u.size(), 0.0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const auto dec = c.decode(c.encode(u));
    for (std::size_t i = 0; i < u.size(); ++i) acc[i] += dec[i];
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(acc[i] / trials, u[i], 2e-3);
  }
}

TEST(QuantizeCompressor, ConstantVectorExact) {
  QuantizeCompressor c(9);
  const std::vector<float> u(32, 0.25f);
  const auto dec = c.decode(c.encode(u));
  for (float v : dec) EXPECT_FLOAT_EQ(v, 0.25f);
}

TEST(StructuredMaskCompressor, KeepsValuesUnscaled) {
  StructuredMaskCompressor c(0.5, 10);
  const auto u = random_update(2000, 10);
  const auto dec = c.decode(c.encode(u));
  std::size_t kept = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (dec[i] != 0.0f) {
      EXPECT_FLOAT_EQ(dec[i], u[i]);  // exact value, no rescaling
      ++kept;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / 2000.0, 0.5, 0.05);
}

TEST(MakeCompressor, FactoryDispatch) {
  EXPECT_EQ(make_compressor("float32", 1)->name(), "float32");
  EXPECT_EQ(make_compressor("quantize8", 1)->name(), "quantize8");
  EXPECT_EQ(make_compressor("subsample:0.10", 1)->name(), "subsample:0.10");
  EXPECT_EQ(make_compressor("structured:0.25", 1)->name(),
            "structured:0.25");
  EXPECT_THROW(make_compressor("bogus", 1), std::invalid_argument);
  EXPECT_THROW(make_compressor("bogus:0.5", 1), std::invalid_argument);
}

TEST(Compressors, CorruptIndexRejected) {
  SubsampleCompressor c(1.0, 11);
  auto enc = c.encode(random_update(4, 11));
  // Corrupt the first stored index to an out-of-range value.
  const std::size_t index_pos = 16;  // after the two u64 headers
  std::uint32_t bad = 1000;
  std::memcpy(enc.payload.data() + index_pos, &bad, sizeof(bad));
  EXPECT_THROW(c.decode(enc), std::runtime_error);
}

}  // namespace
}  // namespace cmfl::core

// The Konečný-baseline codecs folded in from the former core/compression.h:
// dense (lossless), subsample (unbiased sketch), quant (stochastic
// rounding), structured mask.  Behavior-level invariants only — the
// exhaustive malformed-payload matrix lives in test_codec_malformed.cpp.
#include "codec/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "util/rng.h"

namespace cmfl::codec {
namespace {

std::vector<float> random_update(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-0.5f, 0.5f);
  return v;
}

TEST(DenseCodec, LosslessRoundTrip) {
  DenseCodec c;
  const auto u = random_update(257, 1);
  const auto enc = c.encode(u);
  EXPECT_EQ(enc.wire_bytes(), 8u + 257 * 4);
  EXPECT_EQ(c.decode(enc.payload), u);
}

TEST(DenseCodec, TruncationDetected) {
  DenseCodec c;
  auto enc = c.encode(random_update(16, 2));
  enc.payload.resize(enc.payload.size() - 5);
  EXPECT_THROW(c.decode(enc.payload), std::runtime_error);
}

TEST(SubsampleCodec, ShrinksWireSize) {
  SubsampleCodec c(0.1, 3);
  const auto u = random_update(10000, 3);
  const auto enc = c.encode(u);
  // ~10% of coordinates at 8 bytes each + 16-byte header.
  EXPECT_LT(enc.wire_bytes(), 10000u * 4 / 2);
  EXPECT_GT(enc.wire_bytes(), 10000u / 20);
}

TEST(SubsampleCodec, UnbiasedInExpectation) {
  // Average many independent encodings: the reconstruction must converge to
  // the original (the 1/keep rescaling makes subsampling unbiased).
  const auto u = random_update(64, 4);
  std::vector<double> acc(64, 0.0);
  const int trials = 3000;
  SubsampleCodec c(0.25, 5);
  for (int t = 0; t < trials; ++t) {
    const auto dec = c.decode(c.encode(u).payload);
    for (std::size_t i = 0; i < 64; ++i) acc[i] += dec[i];
  }
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(acc[i] / trials, u[i], 0.05);
  }
}

TEST(SubsampleCodec, RejectsBadKeep) {
  EXPECT_THROW(SubsampleCodec(0.0, 1), std::invalid_argument);
  EXPECT_THROW(SubsampleCodec(1.5, 1), std::invalid_argument);
}

TEST(QuantCodec, OneBytePerCoordinateAt8Bits) {
  QuantCodec c(8, 6);
  const auto u = random_update(1000, 6);
  const auto enc = c.encode(u);
  // [u64 dim][u8 bits][f32 lo][f32 hi][1 byte per coordinate].
  EXPECT_EQ(enc.wire_bytes(), 8u + 1 + 4 + 4 + 1000);
}

TEST(QuantCodec, BoundedError) {
  QuantCodec c(8, 7);
  const auto u = random_update(500, 7);
  const auto dec = c.decode(c.encode(u).payload);
  // Max error is one quantization step = range/255.
  const float range = 1.0f;  // values in [-0.5, 0.5]
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(dec[i], u[i], range / 255.0f * 1.5f);
  }
}

TEST(QuantCodec, StochasticRoundingUnbiased) {
  const std::vector<float> u = {0.1f, -0.3f, 0.42f, 0.0f, -0.5f, 0.5f};
  QuantCodec c(8, 8);
  std::vector<double> acc(u.size(), 0.0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const auto dec = c.decode(c.encode(u).payload);
    for (std::size_t i = 0; i < u.size(); ++i) acc[i] += dec[i];
  }
  for (std::size_t i = 0; i < u.size(); ++i) {
    EXPECT_NEAR(acc[i] / trials, u[i], 2e-3);
  }
}

TEST(QuantCodec, ConstantVectorExact) {
  QuantCodec c(8, 9);
  const std::vector<float> u(32, 0.25f);
  const auto dec = c.decode(c.encode(u).payload);
  for (float v : dec) EXPECT_FLOAT_EQ(v, 0.25f);
}

TEST(StructuredMaskCodec, KeepsValuesUnscaled) {
  StructuredMaskCodec c(0.5, 10);
  const auto u = random_update(2000, 10);
  const auto dec = c.decode(c.encode(u).payload);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < u.size(); ++i) {
    if (dec[i] != 0.0f) {
      EXPECT_FLOAT_EQ(dec[i], u[i]);  // exact value, no rescaling
      ++kept;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / 2000.0, 0.5, 0.05);
}

TEST(MakeUpdateCodec, FactoryDispatch) {
  EXPECT_EQ(make_update_codec("dense", 1)->name(), "dense");
  EXPECT_EQ(make_update_codec("float32", 1)->name(), "dense");  // legacy
  EXPECT_EQ(make_update_codec("quantize8", 1)->name(), "quant:8");  // legacy
  EXPECT_EQ(make_update_codec("subsample:0.10", 1)->name(),
            "subsample:0.10");
  EXPECT_EQ(make_update_codec("structured:0.25", 1)->name(),
            "structured:0.25");
  EXPECT_THROW(make_update_codec("bogus", 1), std::invalid_argument);
  EXPECT_THROW(make_update_codec("bogus:0.5", 1), std::invalid_argument);
  EXPECT_THROW(make_update_codec("zstd", 1), std::invalid_argument);
}

TEST(Codecs, CorruptIndexRejected) {
  SubsampleCodec c(1.0, 11);
  auto enc = c.encode(random_update(4, 11));
  // Corrupt the first stored index to an out-of-range value.
  const std::size_t index_pos = 16;  // after the two u64 headers
  std::uint32_t bad = 1000;
  std::memcpy(enc.payload.data() + index_pos, &bad, sizeof(bad));
  EXPECT_THROW(c.decode(enc.payload), std::runtime_error);
}

}  // namespace
}  // namespace cmfl::codec

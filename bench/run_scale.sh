#!/usr/bin/env sh
# Scheduler smoke run: TSan pass over the sched layer plus a 100k-device
# scale check.
#
#   bench/run_scale.sh [build_dir]
#
# Configures a separate ThreadSanitizer build tree (default build-tsan/),
# builds the scheduler test binaries and the scale_sweep example, runs the
# tests under TSan — the buffered-async RoundEngine trains cohorts on the
# thread pool while the server-side event loop commits rounds, which is
# exactly the interleaving TSan exists to check — and finishes with a
# 100,000-device scale_sweep to confirm peak resident client state tracks
# the cohort, not the population.
#
# TSan slows the binaries ~10x; the sweep below is sized to stay in the
# tens of seconds.  For the full-speed 100k run use the default build:
#   cmake --build build -j --target scale_sweep && build/examples/scale_sweep
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="${1:-$REPO_ROOT/build-tsan}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMFL_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target \
      test_sched_population test_sched_round_engine scale_sweep

for t in population round_engine; do
  echo "== test_sched_$t (TSan) =="
  "$BUILD_DIR/tests/test_sched_$t"
done

echo "== scale_sweep: 100k devices (TSan) =="
"$BUILD_DIR/examples/scale_sweep" devices=100000 samples=64,256 iters=4

echo "sched layer clean under ThreadSanitizer"

// Figure 2: stability of the two filter measures over training iterations
// (digits-CNN workload).
//
//  (a) Gaia's significance ‖u‖/‖x‖ decays exponentially as training
//      converges — a fixed threshold cannot track it.
//  (b) CMFL's relevance e(u, ū) stays within a narrow stable band.
//
// Both measures are recorded on the *same* vanilla training trajectory by
// running the simulation once per measure with the filter in
// observe-only mode (threshold 0 ⇒ nothing is ever excluded, but the
// score trace is recorded).
#include "bench_common.h"

#include <algorithm>

using namespace cmfl;

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Figure 2: measure stability over iterations (digits CNN)\n");

  const auto spec = bench::digits_cnn_spec(cfg);
  auto opt = bench::digits_cnn_options(cfg);
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 40));
  opt.eval_every = 0;  // no accuracy evals needed; pure measure traces

  auto make = [&] { return fl::make_digits_cnn_workload(spec); };
  // Threshold 0 never filters: the runs follow the identical vanilla
  // trajectory while recording each measure.
  const auto gaia_run =
      bench::run_scheme(make, "gaia", core::Schedule::constant(0.0), opt);
  const auto cmfl_run =
      bench::run_scheme(make, "cmfl", core::Schedule::constant(0.0), opt);

  std::printf("series,iteration,gaia_significance,cmfl_relevance\n");
  for (std::size_t i = 0; i < gaia_run.history.size(); ++i) {
    std::printf("series,%zu,%.6g,%.4f\n", gaia_run.history[i].iteration,
                gaia_run.history[i].mean_score,
                cmfl_run.history[i].mean_score);
  }

  // Headline statistics: decay factor of Gaia vs relative band of CMFL.
  // Iteration 1 is the cold start (CMFL reports 1.0 by definition), so the
  // stability window starts at iteration 2.
  auto window = [&](const fl::SimulationResult& r) {
    std::vector<double> scores;
    for (const auto& rec : r.history) {
      if (rec.iteration >= 2) scores.push_back(rec.mean_score);
    }
    return scores;
  };
  const auto gaia_scores = window(gaia_run);
  const auto cmfl_scores = window(cmfl_run);
  auto minmax = [](const std::vector<double>& v) {
    return std::pair(*std::min_element(v.begin(), v.end()),
                     *std::max_element(v.begin(), v.end()));
  };
  const auto [gaia_min, gaia_max] = minmax(gaia_scores);
  const auto [cmfl_min, cmfl_max] = minmax(cmfl_scores);

  util::Table table({"measure", "first", "last", "max/min ratio"});
  table.add_row({"gaia ||u||/||x|| (Fig. 2a)",
                 util::fmt(gaia_scores.front(), 4),
                 util::fmt(gaia_scores.back(), 4),
                 util::fmt(gaia_max / std::max(gaia_min, 1e-12), 1)});
  table.add_row({"cmfl relevance (Fig. 2b)", util::fmt(cmfl_scores.front(), 4),
                 util::fmt(cmfl_scores.back(), 4),
                 util::fmt(cmfl_max / std::max(cmfl_min, 1e-12), 2)});
  table.print(std::cout);
  std::printf(
      "\npaper shape: Gaia's measure decays by orders of magnitude (log-"
      "scale axis); CMFL's stays in a narrow band\n");
  bench::warn_unused(cfg);
  return 0;
}

// Theorem 1 validation: on an exactly-solvable convex federated problem,
// the time-averaged regret (1/T)·Σ|f(x̃_t) − f(x*)| must vanish under the
// decaying schedules η_t = η0/√t, v_t = v0/√t — with CMFL filtering active —
// and must NOT blow up relative to vanilla FL.
//
// Also sweeps the schedule family (remark 2 of the theorem: "a diverse
// choices of η_t and v_t can guarantee convergence, though the convergence
// speed can be different").
#include "bench_common.h"

#include "fl/convex_testbed.h"

using namespace cmfl;

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Theorem 1: convergence of Algorithm 1 on a convex testbed\n\n");

  fl::ConvexTestbedSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("clients", 50));
  spec.dim = static_cast<std::size_t>(cfg.get_int("dim", 64));
  spec.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));
  fl::ConvexTestbed testbed(spec);
  const auto iters = static_cast<std::size_t>(cfg.get_int("iters", 2000));
  const core::Schedule lr = core::Schedule::inv_sqrt(cfg.get_double("lr", 0.2));

  struct Row {
    std::string name;
    std::unique_ptr<core::UpdateFilter> filter;
  };
  std::vector<Row> rows;
  rows.push_back({"vanilla", std::make_unique<core::AcceptAllFilter>()});
  rows.push_back({"cmfl v=0.5/sqrt(t) (paper)",
                  std::make_unique<core::CmflFilter>(
                      core::Schedule::inv_sqrt(0.5))});
  rows.push_back({"cmfl v=0.9/sqrt(t)",
                  std::make_unique<core::CmflFilter>(
                      core::Schedule::inv_sqrt(0.9))});
  rows.push_back({"cmfl v=0.5/t",
                  std::make_unique<core::CmflFilter>(
                      core::Schedule::inv_linear(0.5))});
  rows.push_back({"cmfl v=0.55/t^0.1",
                  std::make_unique<core::CmflFilter>(
                      core::Schedule::inv_pow(0.55, 0.1))});

  util::Table table({"scheme", "rounds", "avg regret T/4", "avg regret T",
                     "decayed", "final |f - f*|"});
  for (auto& row : rows) {
    const fl::ConvexRunResult r = testbed.run(iters, lr, *row.filter);
    const double early = r.time_averaged_regret[iters / 4 - 1];
    const double late = r.final_time_averaged_regret();
    table.add_row({row.name,
                   util::fmt_count(static_cast<long long>(r.total_rounds)),
                   util::fmt(early, 4), util::fmt(late, 4),
                   late < early ? "yes" : "NO",
                   util::fmt(r.final_loss_gap, 4)});
    std::printf("series,%s", row.name.c_str());
    for (std::size_t t = 9; t < iters; t += iters / 20) {
      std::printf(",%.5f", r.time_averaged_regret[t]);
    }
    std::printf("\n");
  }
  table.print(std::cout);
  std::printf(
      "\nexpected: every scheme's time-averaged regret decreases with T "
      "(Theorem 1), CMFL's rounds are fewer than vanilla's, and the final "
      "loss gaps are comparable\n");
  bench::warn_unused(cfg);
  return 0;
}

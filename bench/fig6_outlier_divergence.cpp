// Figure 6: normalized model divergence of outlier vs non-outlier clients
// in the HAR multi-task workload.
//
// Protocol (paper §V-B): run MOCHA+CMFL, find the clients whose updates are
// *frequently eliminated* (the paper found 37/142 clients responsible for
// 84.5% of eliminations), split the population on that criterion, and
// compare the two groups' Eq. 7 divergence CDFs against the mean model.
// The frequently-eliminated group must show a clearly heavier divergence
// tail.  The synthetic HAR generator plants ground-truth outliers, so this
// bench also cross-checks the elimination-based split against the planted
// labels (precision of the detector).
#include "bench_common.h"

#include <algorithm>
#include <numeric>

#include "data/synth_har.h"
#include "fl/divergence.h"
#include "mtl/mtl_simulation.h"

using namespace cmfl;

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Figure 6: outlier vs non-outlier model divergence (HAR)\n");

  util::Rng rng(static_cast<std::uint64_t>(cfg.get_int64("seed", 3)));
  data::SynthHarSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("clients", 60));
  spec.features = static_cast<std::size_t>(cfg.get_int("features", 48));
  spec.min_samples = 30;
  spec.max_samples = 80;
  spec.outlier_fraction = 0.25;
  spec.outlier_label_flip = 0.6;
  data::HarData har = data::make_synth_har(spec, rng);

  mtl::MtlOptions opt;
  opt.local_epochs = cfg.get_int("epochs", 5);
  opt.batch_size = 4;
  opt.learning_rate = static_cast<float>(cfg.get_double("lr", 0.02));
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 60));
  opt.eval_every = 10;
  opt.lambda = 0.1;
  opt.seed = 11;
  mtl::MtlSimulation sim(
      &har.dataset, har.partition,
      std::make_unique<core::CmflFilter>(
          core::Schedule::constant(cfg.get_double("threshold", 0.45))),
      opt);
  const fl::SimulationResult result = sim.run();

  // Split clients by elimination count: "frequently eliminated" = above the
  // population mean (the paper's split used an absolute count; the mean is
  // the scale-free equivalent).
  const std::size_t m = har.partition.clients();
  const double mean_elims =
      std::accumulate(result.eliminations_per_client.begin(),
                      result.eliminations_per_client.end(), 0.0) /
      static_cast<double>(m);
  std::vector<bool> frequently_eliminated(m);
  std::size_t outlier_count = 0;
  std::size_t elims_in_outliers = 0, total_elims = 0;
  for (std::size_t k = 0; k < m; ++k) {
    frequently_eliminated[k] =
        static_cast<double>(result.eliminations_per_client[k]) > mean_elims;
    outlier_count += frequently_eliminated[k];
    total_elims += result.eliminations_per_client[k];
    if (frequently_eliminated[k]) {
      elims_in_outliers += result.eliminations_per_client[k];
    }
  }
  if (outlier_count == 0 || outlier_count == m) {
    std::printf("degenerate split (%zu/%zu flagged) — raise iters or tune "
                "threshold\n", outlier_count, m);
    return 1;
  }

  // Per-task weight rows vs the mean task model (the "global model" of the
  // MTL setting).
  const std::size_t d = har.dataset.features();
  std::vector<std::vector<float>> client_params(m, std::vector<float>(d));
  std::vector<float> mean_model(d, 0.0f);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < d; ++j) {
      client_params[k][j] = result.final_params[k * d + j];
      mean_model[j] += client_params[k][j] / static_cast<float>(m);
    }
  }
  const auto outlier_d = fl::normalized_model_divergence_subset(
      mean_model, client_params, frequently_eliminated, true);
  const auto normal_d = fl::normalized_model_divergence_subset(
      mean_model, client_params, frequently_eliminated, false);
  const stats::Cdf outlier_cdf(outlier_d);
  const stats::Cdf normal_cdf(normal_d);
  bench::print_cdf("outliers", outlier_cdf);
  bench::print_cdf("non_outliers", normal_cdf);

  // Cross-check against the planted ground truth.
  std::size_t hits = 0;
  for (std::size_t k = 0; k < m; ++k) {
    if (frequently_eliminated[k] && har.is_outlier[k]) ++hits;
  }

  util::Table table({"population", "clients", "median d_j",
                     "frac d_j > 100%", "max d_j"});
  auto frac_above = [](const std::vector<double>& v) {
    std::size_t above = 0;
    for (double x : v) above += x > 1.0;
    return static_cast<double>(above) / static_cast<double>(v.size());
  };
  table.add_row({"frequently eliminated", std::to_string(outlier_count),
                 util::fmt(outlier_cdf.median(), 2),
                 util::fmt(frac_above(outlier_d) * 100, 1) + "%",
                 util::fmt(outlier_cdf.max(), 1)});
  table.add_row({"rest", std::to_string(m - outlier_count),
                 util::fmt(normal_cdf.median(), 2),
                 util::fmt(frac_above(normal_d) * 100, 1) + "%",
                 util::fmt(normal_cdf.max(), 1)});
  table.print(std::cout);

  std::printf(
      "\neliminations concentrated in flagged clients: %.1f%% (paper: "
      "84.5%% in 37/142 clients)\n",
      100.0 * static_cast<double>(elims_in_outliers) /
          static_cast<double>(std::max<std::size_t>(total_elims, 1)));
  std::printf("flagged clients that are planted outliers: %zu/%zu\n", hits,
              outlier_count);
  std::printf(
      "paper shape: the frequently-eliminated population shows a clearly "
      "heavier divergence distribution than the rest\n");
  bench::warn_unused(cfg);
  return 0;
}

// CMFL savings under production round scheduling (DESIGN.md §11).
//
// The paper evaluates CMFL in fully synchronous rounds over always-on
// clients.  This bench re-asks the question under the round shapes a
// production scheduler actually runs: the digits-MLP learning workload
// (same dataset, same partition, same seed) is driven through
// sched::RoundEngine in all three round modes — sync, over-selection with
// straggler discard, and FedBuff-style buffered-async — once with the
// vanilla accept-all filter and once with the CMFL relevance filter.  For
// each mode the table reports the rounds-valued and bytes-valued Saving^a
// (fl::saving / fl::saving_bytes) plus the scheduling counters, so the
// effect of stragglers and staleness on relevance filtering is visible in
// one run.
//
//   ./bench_sched devices=60 sample=20 iters=40 target=0.55
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <stdexcept>
#include <string>

#include "bench_common.h"
#include "core/filter.h"
#include "core/threshold.h"
#include "fl/metrics.h"
#include "fl/workloads.h"
#include "sched/population.h"
#include "sched/round_engine.h"
#include "util/config.h"
#include "util/table.h"

using namespace cmfl;

namespace {

fl::DigitsMlpSpec workload_spec(const util::Config& cfg) {
  fl::DigitsMlpSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("devices", 60));
  spec.train_samples =
      static_cast<std::size_t>(cfg.get_int("train_samples", 1800));
  spec.test_samples =
      static_cast<std::size_t>(cfg.get_int("test_samples", 400));
  spec.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));
  return spec;
}

sched::PopulationSpec population_spec(const util::Config& cfg,
                                      std::uint64_t devices,
                                      std::uint64_t seed) {
  sched::PopulationSpec spec;
  spec.devices = devices;
  spec.mean_on_fraction = cfg.get_double("on_fraction", 0.8);
  spec.duty_period_rounds = cfg.get_double("duty_period", 12.0);
  spec.dropout_mid_round = cfg.get_double("dropout", 0.03);
  spec.latency_log_sigma = cfg.get_double("log_sigma", 0.6);
  spec.max_resident =
      static_cast<std::size_t>(cfg.get_int("resident", 24));
  spec.seed = seed ^ 0x5EEDULL;
  return spec;
}

fl::SimulationOptions base_options(const util::Config& cfg) {
  fl::SimulationOptions opt;
  opt.local_epochs = cfg.get_int("epochs", 4);  // E = 4 (paper)
  opt.batch_size = static_cast<std::size_t>(cfg.get_int("batch", 2));
  opt.learning_rate = core::Schedule::inv_sqrt(cfg.get_double("lr", 0.15));
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 80));
  opt.eval_every = static_cast<std::size_t>(cfg.get_int("eval_every", 1));
  opt.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));
  opt.schedule.selection = sched::parse_selection(
      cfg.get_string("selection", "available"));
  opt.schedule.sample_size =
      static_cast<std::size_t>(cfg.get_int("sample", 20));
  opt.schedule.async_buffer = static_cast<std::size_t>(
      cfg.get_int("buffer", std::max(1, cfg.get_int("sample", 20) / 4)));
  opt.schedule.staleness_exponent = cfg.get_double("staleness_exp", 0.5);
  return opt;
}

core::Schedule threshold_schedule(const util::Config& cfg) {
  // The paper sweeps constant relevance thresholds plus the decaying
  // schedule v_t = v0/sqrt(t); vt=const selects the former.
  const auto kind = cfg.get_string("vt", "inv_sqrt");
  const double v0 = cfg.get_double("threshold", kind == "const" ? 0.44 : 0.8);
  if (kind == "const") return core::Schedule::constant(v0);
  if (kind == "inv_sqrt") return core::Schedule::inv_sqrt(v0);
  throw std::invalid_argument("vt= must be const | inv_sqrt");
}

sched::EngineResult run_mode(const fl::DigitsMlpSpec& wspec,
                             const sched::PopulationSpec& pspec,
                             fl::SimulationOptions opt, sched::RoundMode mode,
                             const std::string& filter_kind,
                             const core::Schedule& threshold) {
  opt.schedule.mode = mode;
  auto workload = fl::make_digits_mlp_population(wspec);
  sched::Population population(pspec, workload.factory);
  sched::RoundEngine engine(population,
                            core::make_filter(filter_kind, threshold),
                            workload.evaluator, opt);
  return engine.run();
}

std::string opt_kb(const std::optional<std::uint64_t>& v) {
  return v ? util::fmt(static_cast<double>(*v) / 1024.0, 1)
           : "not reached";
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  const auto wspec = workload_spec(cfg);
  const auto pspec =
      population_spec(cfg, static_cast<std::uint64_t>(wspec.clients),
                      wspec.seed);
  const auto opt = base_options(cfg);
  const double target = cfg.get_double("target", 0.55);
  const auto threshold = threshold_schedule(cfg);

  std::printf(
      "digits_mlp: %zu devices, sample %zu, %zu iters, target %.2f, "
      "v(t) %s\n",
      wspec.clients, opt.schedule.sample_size, opt.max_iterations, target,
      threshold.describe().c_str());

  util::Table savings({"mode", "filter", "phi_rounds", "phi_KB", "final_acc",
                       "rounds_to_a", "KB_to_a", "saving", "byte_saving"});
  util::Table sched_table({"mode", "filter", "invited", "reported",
                           "unavailable", "dropouts", "stragglers", "stale",
                           "peak_resident", "materializations"});

  for (const auto mode :
       {sched::RoundMode::kSync, sched::RoundMode::kOverSelect,
        sched::RoundMode::kBufferedAsync}) {
    const auto vanilla =
        run_mode(wspec, pspec, opt, mode, "vanilla", threshold);
    const auto cmfl_run = run_mode(wspec, pspec, opt, mode, "cmfl", threshold);
    const auto row =
        fl::make_saving_row(sched::round_mode_name(mode), target, vanilla.sim,
                            cmfl_run.sim);

    for (const auto* r : {&vanilla, &cmfl_run}) {
      const bool is_cmfl = (r == &cmfl_run);
      savings.add_row(
          {sched::round_mode_name(mode), is_cmfl ? "cmfl" : "vanilla",
           util::fmt_count(static_cast<long long>(r->sim.total_rounds)),
           util::fmt(static_cast<double>(r->sim.uploaded_bytes) / 1024.0, 1),
           util::fmt(r->sim.final_accuracy, 4),
           bench::opt_rounds(is_cmfl ? row.algo_rounds : row.vanilla_rounds),
           opt_kb(is_cmfl ? row.algo_bytes : row.vanilla_bytes),
           is_cmfl ? bench::opt_saving(row.saving) : "1.00x",
           is_cmfl ? bench::opt_saving(row.byte_saving) : "1.00x"});
      const auto& s = r->sched;
      sched_table.add_row(
          {sched::round_mode_name(mode), is_cmfl ? "cmfl" : "vanilla",
           util::fmt_count(static_cast<long long>(s.invited)),
           util::fmt_count(static_cast<long long>(s.reported)),
           util::fmt_count(static_cast<long long>(s.unavailable_invited)),
           util::fmt_count(static_cast<long long>(s.mid_round_dropouts)),
           util::fmt_count(static_cast<long long>(s.discarded_stragglers)),
           util::fmt_count(static_cast<long long>(s.stale_discarded)),
           util::fmt_count(static_cast<long long>(s.peak_resident_clients)),
           util::fmt_count(static_cast<long long>(s.materializations))});
    }
  }

  std::printf("\nSaving^a at target accuracy %.2f (rounds- and byte-valued "
              "Phi, vanilla / cmfl per mode):\n",
              target);
  savings.print(std::cout);
  std::printf("\nScheduling counters:\n");
  sched_table.print(std::cout);

  bench::warn_unused(cfg);
  return 0;
}

// §V-C computation-overhead micro-benchmark (google-benchmark).
//
// The paper reports that checking an update's relevance costs < 1.6 µs —
// under 0.13% of a 1.25 s client-side training iteration.  This bench
// measures (a) the relevance check, (b) Gaia's significance check, and
// (c) one full local training iteration of the digits CNN client, then a
// final report prints the measured ratio.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/relevance.h"
#include "core/significance.h"
#include "fl/workloads.h"
#include "tensor/kernels.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace cmfl;

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-1.0f, 1.0f);
  return v;
}

void BM_RelevanceCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto u = random_vec(n, 1);
  const auto g = random_vec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relevance(u, g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RelevanceCheck)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

// Packed fast path: ū packed once server-side, every client reuses it.
void BM_RelevanceCheckPacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto u = random_vec(n, 1);
  const tensor::SignPack g(random_vec(n, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relevance(u, g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RelevanceCheckPacked)
    ->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_GaiaSignificanceCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto u = random_vec(n, 3);
  const auto x = random_vec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::norm_ratio_significance(u, x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GaiaSignificanceCheck)->Arg(1 << 14)->Arg(1 << 17);

void BM_LocalTrainingIteration(benchmark::State& state) {
  fl::DigitsCnnSpec spec;
  spec.clients = 4;
  spec.train_samples = 200;
  spec.test_samples = 40;
  spec.cnn.image_size = 12;
  spec.cnn.conv1_filters = 4;
  spec.cnn.conv2_filters = 8;
  spec.cnn.fc_width = 32;
  spec.digits.image_size = 12;
  fl::Workload w = fl::make_digits_cnn_workload(spec);
  std::vector<float> params(w.param_count);
  w.clients[0]->get_params(params);
  for (auto _ : state) {
    w.clients[0]->set_params(params);
    benchmark::DoNotOptimize(w.clients[0]->train_local(4, 2, 0.05f));
  }
}
BENCHMARK(BM_LocalTrainingIteration);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Direct ratio report matching the paper's claim, measured at the digits
  // CNN update size.
  fl::DigitsCnnSpec spec;
  spec.clients = 4;
  spec.train_samples = 200;
  spec.test_samples = 40;
  fl::Workload w = fl::make_digits_cnn_workload(spec);
  std::vector<float> params(w.param_count);
  w.clients[0]->get_params(params);
  const auto update = random_vec(w.param_count, 7);

  util::WallTimer t;
  constexpr int kChecks = 20000;
  double sink = 0.0;
  for (int i = 0; i < kChecks; ++i) sink += core::relevance(update, params);
  const double check_us = t.micros() / kChecks;

  // Re-verify the §V-C claim at 2^20 parameters on both paths: the scalar
  // scan and the SignPack popcount path against a server-cached pack.
  constexpr std::size_t kLarge = std::size_t{1} << 20;
  const auto big_u = random_vec(kLarge, 11);
  const auto big_g = random_vec(kLarge, 12);
  t.reset();
  constexpr int kLargeChecks = 2000;
  for (int i = 0; i < kLargeChecks; ++i) {
    sink += core::relevance(big_u, big_g);
  }
  const double scalar_1m_us = t.micros() / kLargeChecks;
  const tensor::SignPack big_pack(big_g);
  t.reset();
  for (int i = 0; i < kLargeChecks; ++i) {
    sink += core::relevance(big_u, big_pack);
  }
  const double mixed_1m_us = t.micros() / kLargeChecks;
  const tensor::SignPack big_upack(big_u);
  t.reset();
  for (int i = 0; i < kLargeChecks; ++i) {
    sink += core::relevance(big_upack, big_pack);
  }
  const double packed_1m_us = t.micros() / kLargeChecks;

  t.reset();
  constexpr int kIters = 5;
  for (int i = 0; i < kIters; ++i) {
    w.clients[0]->set_params(params);
    sink += w.clients[0]->train_local(4, 2, 0.05f);
  }
  const double train_us = t.micros() / kIters;

  std::printf(
      "\nrelevance check: %.2f us on a %zu-parameter update; one local "
      "training iteration (E=4, B=2): %.0f us; overhead = %.4f%% "
      "(paper: <1.6 us, <0.13%%) [sink=%.1f]\n",
      check_us, w.param_count, train_us, 100.0 * check_us / train_us, sink);
  std::printf(
      "relevance check at 2^20 params: scalar %.2f us; float vs cached "
      "SignPack %.2f us (half the memory traffic); pack vs pack %.2f us "
      "(%.1fx scalar)\n",
      scalar_1m_us, mixed_1m_us, packed_1m_us, scalar_1m_us / packed_1m_us);
  return 0;
}

// §V-C computation-overhead micro-benchmark (google-benchmark).
//
// The paper reports that checking an update's relevance costs < 1.6 µs —
// under 0.13% of a 1.25 s client-side training iteration.  This bench
// measures (a) the relevance check, (b) Gaia's significance check, and
// (c) one full local training iteration of the digits CNN client, then a
// final report prints the measured ratio.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/relevance.h"
#include "core/significance.h"
#include "fl/workloads.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace cmfl;

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-1.0f, 1.0f);
  return v;
}

void BM_RelevanceCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto u = random_vec(n, 1);
  const auto g = random_vec(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::relevance(u, g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RelevanceCheck)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_GaiaSignificanceCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto u = random_vec(n, 3);
  const auto x = random_vec(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::norm_ratio_significance(u, x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GaiaSignificanceCheck)->Arg(1 << 14)->Arg(1 << 17);

void BM_LocalTrainingIteration(benchmark::State& state) {
  fl::DigitsCnnSpec spec;
  spec.clients = 4;
  spec.train_samples = 200;
  spec.test_samples = 40;
  spec.cnn.image_size = 12;
  spec.cnn.conv1_filters = 4;
  spec.cnn.conv2_filters = 8;
  spec.cnn.fc_width = 32;
  spec.digits.image_size = 12;
  fl::Workload w = fl::make_digits_cnn_workload(spec);
  std::vector<float> params(w.param_count);
  w.clients[0]->get_params(params);
  for (auto _ : state) {
    w.clients[0]->set_params(params);
    benchmark::DoNotOptimize(w.clients[0]->train_local(4, 2, 0.05f));
  }
}
BENCHMARK(BM_LocalTrainingIteration);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Direct ratio report matching the paper's claim, measured at the digits
  // CNN update size.
  fl::DigitsCnnSpec spec;
  spec.clients = 4;
  spec.train_samples = 200;
  spec.test_samples = 40;
  fl::Workload w = fl::make_digits_cnn_workload(spec);
  std::vector<float> params(w.param_count);
  w.clients[0]->get_params(params);
  const auto update = random_vec(w.param_count, 7);

  util::WallTimer t;
  constexpr int kChecks = 20000;
  double sink = 0.0;
  for (int i = 0; i < kChecks; ++i) sink += core::relevance(update, params);
  const double check_us = t.micros() / kChecks;

  t.reset();
  constexpr int kIters = 5;
  for (int i = 0; i < kIters; ++i) {
    w.clients[0]->set_params(params);
    sink += w.clients[0]->train_local(4, 2, 0.05f);
  }
  const double train_us = t.micros() / kIters;

  std::printf(
      "\nrelevance check: %.2f us on a %zu-parameter update; one local "
      "training iteration (E=4, B=2): %.0f us; overhead = %.4f%% "
      "(paper: <1.6 us, <0.13%%) [sink=%.1f]\n",
      check_us, w.param_count, train_us, 100.0 * check_us / train_us, sink);
  return 0;
}

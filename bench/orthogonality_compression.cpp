// Orthogonality study (paper §I): CMFL reduces the *number* of uploads,
// compression reduces the *bits per* upload — the two compose.
//
// Grid: {vanilla, cmfl} × {dense, sign, quant:8, topk:0.05, subsample:0.25,
// structured:0.25} on the digits MLP workload, reporting the exact uplink
// bytes to reach a target accuracy.  Expected shape: combining CMFL with
// any codec beats either alone on bytes-to-accuracy.
#include "bench_common.h"

using namespace cmfl;

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Orthogonality: CMFL x update compression (digits MLP)\n\n");
  const double target = cfg.get_double("target", 0.7);

  fl::DigitsMlpSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("clients", 30));
  spec.train_samples = spec.clients * 30;
  spec.test_samples = 300;
  spec.hidden = {32};
  spec.digits.image_size = 12;
  spec.digits.noise_stddev = 0.25f;
  spec.digits.noise_density = 0.15f;
  spec.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));
  auto make = [&] { return fl::make_digits_mlp_workload(spec); };

  fl::SimulationOptions base;
  base.local_epochs = 4;
  base.batch_size = 2;
  base.learning_rate = core::Schedule::inv_sqrt(cfg.get_double("lr", 0.3));
  base.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 50));
  base.eval_every = 1;

  struct Cell {
    const char* scheme;
    const char* codec;
  };
  const std::vector<Cell> grid = {
      {"vanilla", "dense"},          {"vanilla", "sign"},
      {"vanilla", "quant:8"},        {"vanilla", "topk:0.05"},
      {"vanilla", "subsample:0.25"}, {"vanilla", "structured:0.25"},
      {"cmfl", "dense"},             {"cmfl", "sign"},
      {"cmfl", "quant:8"},           {"cmfl", "topk:0.05"},
      {"cmfl", "subsample:0.25"},    {"cmfl", "structured:0.25"},
  };

  util::Table table({"scheme", "codec", "uploads", "uplink bytes",
                     "rounds to target", "final acc"});
  std::uint64_t baseline_bytes = 0;
  for (const auto& cell : grid) {
    auto opt = base;
    opt.codec.spec = cell.codec;
    const core::Schedule threshold =
        std::string(cell.scheme) == "cmfl"
            ? core::Schedule::constant(cfg.get_double("threshold", 0.42))
            : core::Schedule::constant(0.0);
    const auto r = bench::run_scheme(make, cell.scheme, threshold, opt);
    if (std::string(cell.scheme) == "vanilla" &&
        std::string(cell.codec) == "dense") {
      baseline_bytes = r.uploaded_bytes;
    }
    table.add_row({cell.scheme, cell.codec,
                   util::fmt_count(static_cast<long long>(r.total_rounds)),
                   util::fmt_count(static_cast<long long>(r.uploaded_bytes)),
                   bench::opt_rounds(r.rounds_to_accuracy(target)),
                   util::fmt(r.final_accuracy, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nbaseline (vanilla, dense) uplink: %s bytes; CMFL cuts uploads, "
      "codecs cut bytes per upload, and the savings multiply.\n",
      util::fmt_count(static_cast<long long>(baseline_bytes)).c_str());
  bench::warn_unused(cfg);
  return 0;
}

#!/usr/bin/env sh
# Records the end-to-end training baseline BENCH_train.json at the repo root
# from a Release build, then re-runs the hot-path correctness gates
# (allocation regression + conv im2col equivalence) under AddressSanitizer.
#
#   bench/run_train.sh [build_dir] [--benchmark_* flags...]
#
# Steps:
#   1. Configure/build bench_train with -DCMAKE_BUILD_TYPE=Release
#      (default dir build-release/) and record BENCH_train.json.
#   2. Verify the JSON's `cmfl_build_type` stamp says Release (the
#      library_build_type key only describes libbenchmark) — fail loudly
#      otherwise.
#   3. Verify the im2col/GEMM CNN path is >= 2x the retained naive path
#      (BM_TrainStep_CNN vs BM_TrainStep_CNN_NaiveRef steps/sec), and —
#      when the binary reports cmfl_simd=avx2-fma — that the vector-tier
#      step (BM_TrainStep_CNN_Fast) clears its own higher floor of 3x the
#      naive path.  The kernel thread setting honors CMFL_THREADS when set
#      (auto otherwise); the tracked baseline is single-core.
#   4. Build test_nn_alloc + test_nn_conv_im2col with -DCMFL_SANITIZE=address
#      (dir <build_dir>-asan) and run them, so the workspace-reuse paths are
#      exercised under ASan before a baseline is accepted.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="$REPO_ROOT/build-release"
case "${1:-}" in
  --*) ;;                        # first arg is a benchmark flag, keep default
  "") ;;
  *) BUILD_DIR=$1; shift ;;
esac

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_train

OUT="$REPO_ROOT/BENCH_train.json"
# Repetitions + median comparison: the tracked ratio must not depend on a
# noise burst hitting one benchmark of the pair.
"$BUILD_DIR/bench/bench_train" --benchmark_out="$OUT" \
                               --benchmark_out_format=json \
                               --benchmark_repetitions=7 \
                               --benchmark_report_aggregates_only=true "$@"

if ! grep -q '"cmfl_build_type": "Release"' "$OUT"; then
  echo "ERROR: $OUT was not recorded from a Release build" >&2
  echo "       (cmfl_build_type context: $(grep -o '"cmfl_build_type":[^,]*' "$OUT" || echo missing))" >&2
  exit 1
fi

# steps/sec ratios: the bit-exact im2col/GEMM CNN step must be >= 2x the
# naive path, and the vector tier must clear its own higher 3x floor when
# the host actually ran AVX2/FMA (cmfl_simd stamp).
python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    data = json.load(f)
rate = {b["name"]: b["items_per_second"]
        for b in data["benchmarks"]
        if "items_per_second" in b}
def median_rate(name):
    return rate.get(name + "_median", rate.get(name))
naive = median_rate("BM_TrainStep_CNN_NaiveRef")
ratio = median_rate("BM_TrainStep_CNN") / naive
print(f"CNN steps/sec ratio (im2col vs naive): {ratio:.2f}x")
if ratio < 2.0:
    print(f"ERROR: im2col CNN path is {ratio:.2f}x the naive path "
          "(< 2x floor)", file=sys.stderr)
    sys.exit(1)
if data["context"].get("cmfl_simd") == "avx2-fma":
    fast = median_rate("BM_TrainStep_CNN_Fast")
    fast_ratio = fast / naive
    print(f"CNN steps/sec ratio (vector tier vs naive): {fast_ratio:.2f}x")
    if fast_ratio < 3.0:
        print(f"ERROR: vector-tier CNN path is {fast_ratio:.2f}x the naive "
              "path (< 3x floor)", file=sys.stderr)
        sys.exit(1)
else:
    print("cmfl_simd != avx2-fma: vector-tier floor skipped")
EOF
echo "wrote $OUT (Release provenance + CNN floors verified)"

# --- ASan gate over the hot-path correctness tests ---
ASAN_DIR="${BUILD_DIR}-asan"
cmake -B "$ASAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMFL_SANITIZE=address
cmake --build "$ASAN_DIR" -j --target test_nn_alloc test_nn_conv_im2col
"$ASAN_DIR/tests/test_nn_conv_im2col"
"$ASAN_DIR/tests/test_nn_alloc"
echo "ASan hot-path gates passed"

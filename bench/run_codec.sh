#!/usr/bin/env sh
# Records the codec-throughput baseline BENCH_codec.json at the repo root
# from a Release build, then re-runs the `codec`-labeled test suite (codec
# round-trip/state tests plus the exhaustive malformed-payload matrices)
# under AddressSanitizer+UBSan.
#
#   bench/run_codec.sh [build_dir] [--benchmark_* flags...]
#
# The build dir (default build-release/) is configured
# -DCMAKE_BUILD_TYPE=Release; a tracked baseline recorded from a debug or
# unoptimized binary is meaningless, so the script verifies the binary's own
# build-type stamp in the recorded JSON (custom context `cmfl_build_type`)
# and fails loudly on a mismatch.  The JSON also carries a `cmfl_simd` stamp
# recording whether the sign codec's SignPack ran the AVX2 tier on this
# host.  Compare a fresh run against the checked-in baseline before merging
# any change that touches src/codec/ — regressions must be explained.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="$REPO_ROOT/build-release"
case "${1:-}" in
  --*) ;;                        # first arg is a benchmark flag, keep default
  "") ;;
  *) BUILD_DIR=$1; shift ;;
esac

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_codec

OUT="$REPO_ROOT/BENCH_codec.json"
"$BUILD_DIR/bench/bench_codec" --benchmark_out="$OUT" \
                               --benchmark_out_format=json "$@"

if ! grep -q '"cmfl_build_type": "Release"' "$OUT"; then
  echo "ERROR: $OUT was not recorded from a Release build" >&2
  echo "       (cmfl_build_type context: $(grep -o '"cmfl_build_type":[^,]*' "$OUT" || echo missing))" >&2
  exit 1
fi
if ! grep -q '"cmfl_simd": "' "$OUT"; then
  echo "ERROR: $OUT carries no cmfl_simd provenance stamp" >&2
  exit 1
fi
SIMD=$(grep -o '"cmfl_simd": "[^"]*"' "$OUT" | cut -d'"' -f4)
echo "wrote $OUT (Release provenance verified, simd=$SIMD)"

# --- ASan+UBSan gate over the codec test suite ---
# The decode paths parse attacker-shaped bytes (the malformed matrices flip
# every bit and truncate at every length); they must stay clean under
# address+undefined before a baseline recorded from this tree is accepted.
ASAN_DIR="${BUILD_DIR}-asan-ubsan"
cmake -B "$ASAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMFL_SANITIZE=address,undefined
cmake --build "$ASAN_DIR" -j --target test_codec test_codec_malformed
(cd "$ASAN_DIR" && ctest -L codec --output-on-failure)
echo "ASan+UBSan codec gates passed"

// Figure 3: CDF of ΔUpdate (Eq. 8) — the normalized difference between two
// sequential global updates — for both workloads.
//
// This is the empirical justification of CMFL's core estimate: the previous
// iteration's global update predicts the current one.  Paper: >99% (CNN) /
// >93% (LSTM) of iterations have ΔUpdate < 0.05... on their testbed.  Our
// scaled-down substrate produces larger per-iteration variation, so the
// headline to compare is the *concentration near small values* and the
// bounded maximum.
#include "bench_common.h"

using namespace cmfl;

namespace {

std::vector<double> collect_delta(const fl::SimulationResult& r) {
  std::vector<double> deltas;
  for (const auto& rec : r.history) {
    // Skip iteration 1 (no previous update) and any zero-upload rounds.
    if (rec.iteration >= 2 && rec.delta_update > 0.0 &&
        std::isfinite(rec.delta_update)) {
      deltas.push_back(rec.delta_update);
    }
  }
  return deltas;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Figure 3: CDF of sequential global-update difference (Eq. 8)\n");

  // ΔUpdate is measured in the steady convergence regime the paper's
  // insight targets ("model training usually converges steadily and
  // smoothly"); the gentler learning rates below put the runs there.
  auto cnn_spec = bench::digits_cnn_spec(cfg);
  auto cnn_opt = bench::digits_cnn_options(cfg);
  cnn_opt.learning_rate =
      core::Schedule::inv_sqrt(cfg.get_double("cnn_lr", 0.08));
  cnn_opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 40));
  cnn_opt.eval_every = 0;
  const auto cnn = bench::run_scheme(
      [&] { return fl::make_digits_cnn_workload(cnn_spec); }, "vanilla",
      core::Schedule::constant(0), cnn_opt);

  auto nwp_spec = bench::nwp_lstm_spec(cfg);
  auto nwp_opt = bench::nwp_lstm_options(cfg);
  nwp_opt.learning_rate =
      core::Schedule::constant(cfg.get_double("nwp_lr", 0.3));
  nwp_opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 40));
  nwp_opt.eval_every = 0;
  const auto nwp = bench::run_scheme(
      [&] { return fl::make_nwp_lstm_workload(nwp_spec); }, "vanilla",
      core::Schedule::constant(0), nwp_opt);

  const auto cnn_deltas = collect_delta(cnn);
  const auto nwp_deltas = collect_delta(nwp);
  const stats::Cdf cnn_cdf(cnn_deltas);
  const stats::Cdf nwp_cdf(nwp_deltas);
  bench::print_cdf("digits_cnn", cnn_cdf);
  bench::print_cdf("nwp_lstm", nwp_cdf);

  util::Table table({"model", "iterations", "median", "p90", "max",
                     "frac < 1.0"});
  auto row = [&](const char* name, const stats::Cdf& cdf) {
    table.add_row({name, std::to_string(cdf.count()),
                   util::fmt(cdf.median(), 3), util::fmt(cdf.quantile(0.9), 3),
                   util::fmt(cdf.max(), 3),
                   util::fmt(cdf.fraction_at_or_below(1.0) * 100, 1) + "%"});
  };
  row("digits_cnn", cnn_cdf);
  row("nwp_lstm", nwp_cdf);
  table.print(std::cout);
  std::printf(
      "\npaper shape: the distribution is concentrated at small values with "
      "a bounded tail, validating the previous-update estimate\n");
  bench::warn_unused(cfg);
  return 0;
}

#!/usr/bin/env sh
# Sanitizer pass over the robustness layer: adversary wrappers, robust
# aggregation / update validation, checkpoint codec, and the hardened
# serializer.
#
#   bench/run_robust.sh [asan_build_dir] [ubsan_build_dir]
#
# Runs the four robustness test suites twice — once under AddressSanitizer
# and once under UndefinedBehaviorSanitizer.  This code path deliberately
# manufactures NaN/±inf updates, bit-flipped headers, and truncated files;
# UBSan proves the defenses themselves commit no undefined behaviour while
# handling hostile bytes, ASan that the corruption paths never over-read.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
ASAN_DIR="${1:-$REPO_ROOT/build-asan}"
UBSAN_DIR="${2:-$REPO_ROOT/build-ubsan}"

TARGETS="test_nn_serialize test_fl_robust_agg test_fl_adversary test_fl_checkpoint"

run_suite() {
  dir=$1
  sanitizer=$2
  cmake -B "$dir" -S "$REPO_ROOT" -DCMFL_SANITIZE="$sanitizer" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  # shellcheck disable=SC2086  # TARGETS is a deliberate word list
  cmake --build "$dir" -j --target $TARGETS
  for t in $TARGETS; do
    echo "== $t ($sanitizer) =="
    "$dir/tests/$t"
  done
}

run_suite "$ASAN_DIR" address
run_suite "$UBSAN_DIR" undefined
echo "all robustness tests clean under ASan and UBSan"

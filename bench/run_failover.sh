#!/usr/bin/env sh
# Sanitizer pass over the replicated control plane (DESIGN.md §14).
#
#   bench/run_failover.sh [asan_build_dir] [tsan_build_dir]
#
# The master-failover path is the most concurrent code in the repo: three
# replica threads exchanging Raft frames, worker threads re-sending cached
# replies after redirects, and crash schedules that kill a leader thread
# mid-round.  Every protocol change gets two sanitizer passes:
#
#   1. ASan+UBSan (-DCMFL_SANITIZE=address,undefined) — memory errors and
#      UB in the wire codecs and log/snapshot handling.
#   2. TSan (-DCMFL_SANITIZE=thread) — data races across the
#      replica/worker thread fabric.  TSan slows the tests ~10x; the round
#      deadlines in the failover tests are sized so that margin holds.
#
# Both passes run the `failover`- and `durability`-labelled ctest suites
# (test_net_replicated, test_util_durable_file, test_net_durable) plus the
# raft unit tests, i.e. the same binaries
#   ctest -L 'failover|durability'
# selects in a regular build.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
ASAN_DIR="${1:-$REPO_ROOT/build-asan}"
TSAN_DIR="${2:-$REPO_ROOT/build-tsan}"

TARGETS="test_net_raft test_net_replicated test_util_durable_file test_net_durable"

run_suite() {
  build_dir="$1"
  label="$2"
  for t in $TARGETS; do
    echo "== $t ($label) =="
    "$build_dir/tests/$t"
  done
}

echo "=== pass 1: AddressSanitizer + UndefinedBehaviorSanitizer ==="
cmake -B "$ASAN_DIR" -S "$REPO_ROOT" -DCMFL_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
# shellcheck disable=SC2086
cmake --build "$ASAN_DIR" -j --target $TARGETS
run_suite "$ASAN_DIR" "ASan+UBSan"

echo "=== pass 2: ThreadSanitizer ==="
cmake -B "$TSAN_DIR" -S "$REPO_ROOT" -DCMFL_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
# shellcheck disable=SC2086
cmake --build "$TSAN_DIR" -j --target $TARGETS
run_suite "$TSAN_DIR" "TSan"

echo "failover + durability suites clean under ASan+UBSan and TSan"

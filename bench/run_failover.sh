#!/usr/bin/env sh
# Sanitizer pass over the replicated control plane (DESIGN.md §14).
#
#   bench/run_failover.sh [asan_build_dir] [tsan_build_dir]
#
# The master-failover path is the most concurrent code in the repo: three
# replica threads exchanging Raft frames, worker threads re-sending cached
# replies after redirects, and crash schedules that kill a leader thread
# mid-round.  Every protocol change gets two sanitizer passes:
#
#   1. ASan+UBSan (-DCMFL_SANITIZE=address,undefined) — memory errors and
#      UB in the wire codecs and log/snapshot handling.
#   2. TSan (-DCMFL_SANITIZE=thread) — data races across the
#      replica/worker thread fabric.  TSan slows the tests ~10x; the round
#      deadlines in the failover tests are sized so that margin holds.
#
# Both passes run the `failover`-labelled ctest suite (test_net_replicated)
# plus the raft unit tests, i.e. the same binaries
#   ctest -L failover
# selects in a regular build.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
ASAN_DIR="${1:-$REPO_ROOT/build-asan}"
TSAN_DIR="${2:-$REPO_ROOT/build-tsan}"

echo "=== pass 1: AddressSanitizer + UndefinedBehaviorSanitizer ==="
cmake -B "$ASAN_DIR" -S "$REPO_ROOT" -DCMFL_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$ASAN_DIR" -j --target test_net_raft test_net_replicated

echo "== test_net_raft (ASan+UBSan) =="
"$ASAN_DIR/tests/test_net_raft"
echo "== test_net_replicated (ASan+UBSan) =="
"$ASAN_DIR/tests/test_net_replicated"

echo "=== pass 2: ThreadSanitizer ==="
cmake -B "$TSAN_DIR" -S "$REPO_ROOT" -DCMFL_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j --target test_net_raft test_net_replicated

echo "== test_net_raft (TSan) =="
"$TSAN_DIR/tests/test_net_raft"
echo "== test_net_replicated (TSan) =="
"$TSAN_DIR/tests/test_net_replicated"

echo "failover suite clean under ASan+UBSan and TSan"

// Figure 4 + Table I: learning accuracy vs accumulated communication rounds
// for vanilla FL, Gaia, and CMFL on the digits-CNN and NWP-LSTM workloads,
// and the saving (Φ_vanilla / Φ_A) at two target accuracies per workload.
//
// Following the paper's protocol, each filtered scheme is swept over a set
// of threshold values and the best-performing run is plotted/tabulated
// ("we tested various threshold values ... and chose the threshold values
// with the best performance").
#include "bench_common.h"

using namespace cmfl;

namespace {

struct SchemeResult {
  fl::SimulationResult run;
  std::string chosen;  // description of the winning threshold
};

template <typename MakeWorkload>
SchemeResult best_of(MakeWorkload&& make, const std::string& kind,
                     const std::vector<core::Schedule>& thresholds,
                     const fl::SimulationOptions& opt, double accuracy) {
  auto [best, runs] =
      bench::sweep_thresholds(make, kind, thresholds, opt, accuracy);
  return {std::move(runs[best]), thresholds[best].describe()};
}

void report_workload(const std::string& name, double target_low,
                     double target_high, const fl::SimulationResult& vanilla,
                     const SchemeResult& gaia, const SchemeResult& cmfl) {
  bench::print_curve(name + ",vanilla", vanilla);
  bench::print_curve(name + ",gaia", gaia.run);
  bench::print_curve(name + ",cmfl", cmfl.run);

  util::Table table({"workload", "target acc", "vanilla rounds",
                     "gaia rounds", "gaia saving", "cmfl rounds",
                     "cmfl saving"});
  for (double a : {target_low, target_high}) {
    table.add_row(
        {name, util::fmt(a * 100, 0) + "%",
         bench::opt_rounds(vanilla.rounds_to_accuracy(a)),
         bench::opt_rounds(gaia.run.rounds_to_accuracy(a)),
         bench::opt_saving(fl::saving(vanilla, gaia.run, a)),
         bench::opt_rounds(cmfl.run.rounds_to_accuracy(a)),
         bench::opt_saving(fl::saving(vanilla, cmfl.run, a))});
  }
  table.print(std::cout);
  std::printf("best thresholds: gaia=%s cmfl=%s\n", gaia.chosen.c_str(),
              cmfl.chosen.c_str());
  std::printf("final accuracy: vanilla=%.3f gaia=%.3f cmfl=%.3f\n\n",
              vanilla.final_accuracy, gaia.run.final_accuracy,
              cmfl.run.final_accuracy);
}

std::vector<core::Schedule> parse_sweep(const std::string& kind,
                                        const util::Config& cfg) {
  // Sweep sets mirror the paper's ("a set of 10 relevance threshold values
  // for CMFL ... another set of 10 significance threshold values for
  // Gaia"), trimmed to the values that matter at this scale; `full_sweep=1`
  // restores fuller sets.  CMFL additionally sweeps the paper's decaying
  // schedule v_t = v0/sqrt(t).  Gaia is swept over *constant* thresholds
  // only — a fixed significance threshold is Gaia's published design, and
  // the paper's §III-B critique (the magnitude measure decays while the
  // threshold cannot track it) is precisely about that fixedness.
  const bool full = cfg.get_bool("full_sweep", false);
  std::vector<double> values;
  std::vector<core::Schedule> sweep;
  if (kind == "cmfl") {
    values = full ? std::vector<double>{0.1, 0.2, 0.3, 0.40, 0.44, 0.46,
                                        0.48, 0.50, 0.7, 0.9}
                  : std::vector<double>{0.40, 0.44, 0.48};
    for (double v : values) sweep.push_back(core::Schedule::constant(v));
    sweep.push_back(core::Schedule::inv_sqrt(0.8));
    if (full) sweep.push_back(core::Schedule::inv_sqrt(0.9));
  } else {
    values = full ? std::vector<double>{0.02, 0.05, 0.1, 0.15, 0.2, 0.25,
                                        0.3, 0.5, 0.7, 0.9}
                  : std::vector<double>{0.02, 0.1, 0.25};
    for (double v : values) sweep.push_back(core::Schedule::constant(v));
  }
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Figure 4 + Table I: vanilla FL vs Gaia vs CMFL\n\n");

  // --- Figure 4a: digits CNN ---
  {
    const double lo = cfg.get_double("cnn_target_low", 0.6);
    const double hi = cfg.get_double("cnn_target_high", 0.75);
    const auto spec = bench::digits_cnn_spec(cfg);
    const auto opt = bench::digits_cnn_options(cfg);
    auto make = [&] { return fl::make_digits_cnn_workload(spec); };
    std::printf("## digits CNN (%zu clients, E=%d, B=%zu)\n", spec.clients,
                opt.local_epochs, opt.batch_size);
    const auto vanilla =
        bench::run_scheme(make, "vanilla", core::Schedule::constant(0), opt);
    const auto gaia = best_of(make, "gaia", parse_sweep("gaia", cfg), opt, hi);
    const auto cmfl = best_of(make, "cmfl", parse_sweep("cmfl", cfg), opt, hi);
    report_workload("digits_cnn", lo, hi, vanilla, gaia, cmfl);
  }

  // --- Figure 4b: NWP LSTM ---
  {
    const double lo = cfg.get_double("nwp_target_low", 0.15);
    const double hi = cfg.get_double("nwp_target_high", 0.22);
    const auto spec = bench::nwp_lstm_spec(cfg);
    auto opt = bench::nwp_lstm_options(cfg);
    // All schemes plateau by ~iteration 14 on this workload (same cutoff as
    // the fig7 cluster runs); running far past the plateau only accumulates
    // rounds without accuracy change.
    opt.max_iterations =
        static_cast<std::size_t>(cfg.get_int("nwp_iters", 18));
    opt.eval_every = 1;
    auto make = [&] { return fl::make_nwp_lstm_workload(spec); };
    std::printf("## NWP LSTM (%zu roles, E=%d, B=%zu)\n", spec.text.roles,
                opt.local_epochs, opt.batch_size);
    const auto vanilla =
        bench::run_scheme(make, "vanilla", core::Schedule::constant(0), opt);
    const auto gaia = best_of(make, "gaia", parse_sweep("gaia", cfg), opt, hi);
    // NWP relevance concentrates in a higher, tighter band than the CNN's
    // and drifts down slowly; sweep that band plus slow-decay schedules
    // that track the drift.
    std::vector<core::Schedule> cmfl_sweep = {
        core::Schedule::constant(0.49), core::Schedule::constant(0.51),
        core::Schedule::inv_pow(0.54, 0.02),
        core::Schedule::inv_pow(0.55, 0.02)};
    const auto cmfl = best_of(make, "cmfl", cmfl_sweep, opt, hi);
    report_workload("nwp_lstm", lo, hi, vanilla, gaia, cmfl);
  }

  std::printf(
      "paper shape: saving(CMFL) >> saving(Gaia) ~= 1 at every target "
      "accuracy (paper: 3.45x/3.47x vs 1.25x/1.13x on MNIST CNN; "
      "13.35x/13.97x vs 1.42x/1.26x on NWP LSTM)\n");
  bench::warn_unused(cfg);
  return 0;
}

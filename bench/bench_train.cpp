// End-to-end training-step benchmarks (google-benchmark): per-step wall
// time and steps/sec for the paper's three workload shapes (digits MLP,
// digits CNN, NWP LSTM-LM), plus one full small federated round.
//
// BM_TrainStep_CNN_NaiveRef flips every Conv2d in the model to the retained
// naive reference loops (set_reference_impl), so a single run shows the
// im2col/GEMM speedup directly; `bench/run_train.sh` records the tracked
// baseline BENCH_train.json from a Release build and checks the ratio.
//
// The binary stamps the build type into the JSON as custom context
// `cmfl_build_type` (the library's own library_build_type key reports how
// *libbenchmark* was compiled, not this binary).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <vector>

#include "core/filter.h"
#include "fl/simulation.h"
#include "fl/workloads.h"
#include "nn/conv2d.h"
#include "nn/feed_forward.h"
#include "nn/lstm_lm.h"
#include "tensor/kernels.h"
#include "util/rng.h"

using namespace cmfl;

namespace {

/// Pins the kernel tier for one benchmark body; un-suffixed rows measure the
/// bit-exact tier (the historical baseline), *_Fast rows the AVX2/FMA tier.
struct TierScope {
  explicit TierScope(tensor::kernels::Tier t) { tensor::kernels::set_tier(t); }
  ~TierScope() { tensor::kernels::set_tier(tensor::kernels::Tier::kAuto); }
};

void fill_normal(tensor::Matrix& x, util::Rng& rng) {
  for (float& v : x.flat()) v = rng.normal_f(0.0f, 1.0f);
}

std::vector<int> cyclic_labels(std::size_t n, std::size_t classes) {
  std::vector<int> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = static_cast<int>(i % classes);
  return y;
}

void run_train_steps(benchmark::State& state, nn::FeedForward& model,
                     const tensor::Matrix& x, const std::vector<int>& y) {
  model.train_batch(x, y, 0.05f);  // warm-up: size all workspaces
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_batch(x, y, 0.05f));
  }
  state.SetItemsProcessed(state.iterations());  // items/s == steps/s
}

// --- Digits MLP (paper-scale fully connected model) ---

void BM_TrainStep_MLP(benchmark::State& state) {
  TierScope tier(tensor::kernels::Tier::kExact);
  util::Rng rng(1);
  nn::FeedForward model = nn::make_mlp(64, {32}, 10, rng);
  tensor::Matrix x(32, 64);
  fill_normal(x, rng);
  run_train_steps(state, model, x, cyclic_labels(32, 10));
}
BENCHMARK(BM_TrainStep_MLP);

// --- Digits CNN: im2col/GEMM path vs the retained naive loops ---

nn::FeedForward make_bench_cnn(util::Rng& rng) {
  nn::CnnSpec spec;  // defaults: 12×12 input, 5×5 kernels, 8/16 filters
  return nn::make_digits_cnn(spec, rng);
}

void set_conv_reference_mode(nn::FeedForward& model, bool ref) {
  nn::Sequential& net = model.net();
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&net.layer(i))) {
      conv->set_reference_impl(ref);
    }
  }
}

void BM_TrainStep_CNN(benchmark::State& state) {
  TierScope tier(tensor::kernels::Tier::kExact);
  util::Rng rng(2);
  nn::FeedForward model = make_bench_cnn(rng);
  tensor::Matrix x(8, model.input_dim());
  fill_normal(x, rng);
  run_train_steps(state, model, x, cyclic_labels(8, 10));
}
BENCHMARK(BM_TrainStep_CNN);

// The vector-tier CNN step: the same model with every kernel dispatched to
// the AVX2/FMA tier.  run_train.sh holds this row to its own (higher)
// steps/sec floor, separate from the bit-exact ≥2× old-vs-new check.
void BM_TrainStep_CNN_Fast(benchmark::State& state) {
  TierScope tier(tensor::kernels::Tier::kFast);
  util::Rng rng(2);
  nn::FeedForward model = make_bench_cnn(rng);
  tensor::Matrix x(8, model.input_dim());
  fill_normal(x, rng);
  run_train_steps(state, model, x, cyclic_labels(8, 10));
}
BENCHMARK(BM_TrainStep_CNN_Fast);

void BM_TrainStep_CNN_NaiveRef(benchmark::State& state) {
  TierScope tier(tensor::kernels::Tier::kExact);
  util::Rng rng(2);
  nn::FeedForward model = make_bench_cnn(rng);
  set_conv_reference_mode(model, true);
  tensor::Matrix x(8, model.input_dim());
  fill_normal(x, rng);
  run_train_steps(state, model, x, cyclic_labels(8, 10));
}
BENCHMARK(BM_TrainStep_CNN_NaiveRef);

// --- NWP LSTM language model ---

void BM_TrainStep_LSTM(benchmark::State& state) {
  TierScope tier(tensor::kernels::Tier::kExact);
  util::Rng rng(3);
  nn::LstmLmSpec spec;
  spec.vocab = 64;
  spec.embed_dim = 16;
  spec.hidden_dim = 32;
  spec.layers = 1;
  nn::LstmLm model(spec);
  model.init_params(rng);

  nn::SeqBatch x;
  x.batch = 8;
  x.seq_len = 8;
  x.tokens.resize(x.batch * x.seq_len);
  for (int& t : x.tokens) t = static_cast<int>(rng.uniform_index(64));
  std::vector<int> next(x.batch);
  for (int& t : next) t = static_cast<int>(rng.uniform_index(64));

  model.train_batch(x, next, 0.05f);  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.train_batch(x, next, 0.05f));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrainStep_LSTM);

// --- One full small federated round (client training + CMFL filter +
// aggregation), including model/shard setup per iteration (untimed) ---

void BM_FederatedRound_MLP(benchmark::State& state) {
  TierScope tier(tensor::kernels::Tier::kExact);
  for (auto _ : state) {
    state.PauseTiming();
    fl::DigitsMlpSpec spec;
    spec.clients = 8;
    spec.train_samples = 240;
    spec.test_samples = 80;
    spec.hidden = {16};
    spec.digits.image_size = 8;
    spec.seed = 7;
    fl::Workload w = fl::make_digits_mlp_workload(spec);
    fl::SimulationOptions opt;
    opt.local_epochs = 1;
    opt.batch_size = 4;
    opt.learning_rate = core::Schedule::constant(0.1);
    opt.max_iterations = 1;  // exactly one round
    opt.eval_every = 0;
    opt.seed = 9;
    fl::FederatedSimulation sim(
        std::move(w.clients),
        core::make_filter("cmfl", core::Schedule::constant(0.5)), w.evaluator,
        opt);
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations());  // rounds/s
}
BENCHMARK(BM_FederatedRound_MLP);

}  // namespace

#ifndef CMFL_BUILD_TYPE
#define CMFL_BUILD_TYPE "unknown"
#endif

int main(int argc, char** argv) {
  // library_build_type in the JSON describes libbenchmark, not this binary;
  // run_train.sh gates on this key instead.
  benchmark::AddCustomContext("cmfl_build_type", CMFL_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("cmfl_ndebug", "1");
#else
  benchmark::AddCustomContext("cmfl_ndebug", "0");
#endif
  // SIMD provenance: whether the *_Fast rows actually ran the AVX2/FMA tier
  // on this host or silently fell back to the exact kernels.
  benchmark::AddCustomContext("cmfl_simd", tensor::kernels::simd_level());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Shared configuration for the bench harnesses.
//
// Each bench regenerates one table/figure of the paper (DESIGN.md §3).  The
// default scales are tuned so the full suite runs in minutes on a laptop;
// every knob can be overridden on the command line as key=value (see
// util::Config), e.g.  ./fig4_table1_vanilla_fl clients=100 iters=120
#pragma once

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/filter.h"
#include "fl/metrics.h"
#include "fl/simulation.h"
#include "fl/workloads.h"
#include "stats/cdf.h"
#include "util/config.h"
#include "util/table.h"

namespace cmfl::bench {

/// The scaled-down "MNIST CNN" workload (paper §V-A (1)).
inline fl::DigitsCnnSpec digits_cnn_spec(const util::Config& cfg) {
  fl::DigitsCnnSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("clients", 60));
  spec.train_samples =
      static_cast<std::size_t>(cfg.get_int("train_samples", 1800));
  spec.test_samples =
      static_cast<std::size_t>(cfg.get_int("test_samples", 400));
  spec.cnn.image_size = 12;
  spec.cnn.conv1_filters = 4;
  spec.cnn.conv2_filters = 8;
  spec.cnn.fc_width = 32;
  spec.digits.image_size = 12;
  spec.digits.noise_stddev = 0.25f;
  spec.digits.noise_density = 0.15f;
  spec.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));
  return spec;
}

inline fl::SimulationOptions digits_cnn_options(const util::Config& cfg) {
  fl::SimulationOptions opt;
  opt.local_epochs = cfg.get_int("epochs", 4);          // E = 4 (paper)
  opt.batch_size = static_cast<std::size_t>(cfg.get_int("batch", 2));  // B = 2
  opt.learning_rate =
      core::Schedule::inv_sqrt(cfg.get_double("lr", 0.15));
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 50));
  opt.eval_every = static_cast<std::size_t>(cfg.get_int("eval_every", 1));
  return opt;
}

/// The scaled-down next-word-prediction workload (paper §V-A (2)).
inline fl::NwpLstmSpec nwp_lstm_spec(const util::Config& cfg,
                                     const char* role_key = "roles") {
  fl::NwpLstmSpec spec;
  spec.text.roles = static_cast<std::size_t>(cfg.get_int(role_key, 30));
  spec.text.words_per_role =
      static_cast<std::size_t>(cfg.get_int("words_per_role", 90));
  spec.text.seq_len = 6;
  spec.text.topics = 4;
  spec.text.words_per_topic = 8;
  spec.text.function_words = 16;
  spec.text.dominant_topic_weight = 3.0;
  spec.text.outlier_fraction = cfg.get_double("nwp_outliers", 0.2);
  spec.lm.embed_dim = 12;
  spec.lm.hidden_dim = 24;
  spec.lm.layers = 1;
  spec.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));
  return spec;
}

inline fl::SimulationOptions nwp_lstm_options(const util::Config& cfg) {
  fl::SimulationOptions opt;
  opt.local_epochs = cfg.get_int("epochs", 2);
  opt.batch_size = static_cast<std::size_t>(cfg.get_int("batch", 2));
  opt.learning_rate = core::Schedule::constant(cfg.get_double("lr", 0.8));
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 50));
  opt.eval_every = static_cast<std::size_t>(cfg.get_int("eval_every", 2));
  return opt;
}

/// Runs one simulation with a freshly built workload.
template <typename MakeWorkload>
fl::SimulationResult run_scheme(MakeWorkload&& make, const std::string& kind,
                                core::Schedule threshold,
                                fl::SimulationOptions opt) {
  fl::Workload w = make();
  fl::FederatedSimulation sim(std::move(w.clients),
                              core::make_filter(kind, threshold),
                              w.evaluator, opt);
  return sim.run();
}

/// The paper's protocol: test a set of thresholds, keep the best run for
/// plotting (best = fewest rounds to `accuracy`, fallback highest final
/// accuracy).  Returns {best index, all results}.
template <typename MakeWorkload>
std::pair<std::size_t, std::vector<fl::SimulationResult>> sweep_thresholds(
    MakeWorkload&& make, const std::string& kind,
    const std::vector<core::Schedule>& thresholds, fl::SimulationOptions opt,
    double accuracy) {
  std::vector<fl::SimulationResult> runs;
  runs.reserve(thresholds.size());
  for (const auto& v : thresholds) {
    runs.push_back(run_scheme(make, kind, v, opt));
  }
  return {fl::best_run_index(runs, accuracy), std::move(runs)};
}

/// Prints an accuracy-vs-cumulative-rounds series as CSV rows.
inline void print_curve(const std::string& scheme,
                        const fl::SimulationResult& r) {
  for (const auto& p : fl::accuracy_curve(r)) {
    std::printf("curve,%s,%zu,%.4f\n", scheme.c_str(), p.rounds, p.accuracy);
  }
}

/// Prints a CDF as CSV rows `cdf,<label>,<x>,<fraction>`.
inline void print_cdf(const std::string& label, const stats::Cdf& cdf,
                      std::size_t points = 40) {
  for (const auto& p : cdf.plot_series(points)) {
    std::printf("cdf,%s,%.6g,%.4f\n", label.c_str(), p.x, p.fraction);
  }
}

inline std::string opt_rounds(const std::optional<std::size_t>& v) {
  return v ? util::fmt_count(static_cast<long long>(*v)) : "not reached";
}

inline std::string opt_saving(const std::optional<double>& v) {
  return v ? util::fmt(*v, 2) + "x" : "-";
}

inline void warn_unused(const util::Config& cfg) {
  for (const auto& key : cfg.unused_keys()) {
    std::fprintf(stderr, "warning: unknown config key '%s'\n", key.c_str());
  }
}

}  // namespace cmfl::bench

// Figure 5 + Table II: applying CMFL to federated multi-task learning
// (MOCHA) on the HAR and Semeion workloads — accuracy vs accumulated
// communication rounds, saving at two targets, and the final-accuracy
// improvement the paper highlights (outlier exclusion *helps* accuracy).
#include "bench_common.h"

#include "data/synth_har.h"
#include "data/synth_semeion.h"
#include "mtl/mtl_simulation.h"

using namespace cmfl;

namespace {

struct MtlWorkload {
  data::DenseDataset dataset;
  data::Partition partition;
  std::string name;
};

fl::SimulationResult run_mtl(const MtlWorkload& w, const std::string& kind,
                             core::Schedule threshold,
                             const mtl::MtlOptions& opt) {
  mtl::MtlSimulation sim(&w.dataset, w.partition,
                         core::make_filter(kind, threshold), opt);
  return sim.run();
}

void report(const MtlWorkload& w, const mtl::MtlOptions& opt,
            double target_low, double target_high,
            const std::vector<double>& sweep) {
  std::printf("## %s (%zu tasks)\n", w.name.c_str(), w.partition.clients());
  const auto mocha =
      run_mtl(w, "vanilla", core::Schedule::constant(0), opt);

  std::vector<fl::SimulationResult> runs;
  for (double v : sweep) {
    runs.push_back(run_mtl(w, "cmfl", core::Schedule::constant(v), opt));
  }
  const std::size_t best = fl::best_run_index(runs, target_high);
  const auto& cmfl = runs[best];

  bench::print_curve(w.name + ",mocha", mocha);
  bench::print_curve(w.name + ",mocha+cmfl", cmfl);

  util::Table table({"workload", "target acc", "mocha rounds",
                     "mocha+cmfl rounds", "saving"});
  for (double a : {target_low, target_high}) {
    table.add_row({w.name, util::fmt(a * 100, 0) + "%",
                   bench::opt_rounds(mocha.rounds_to_accuracy(a)),
                   bench::opt_rounds(cmfl.rounds_to_accuracy(a)),
                   bench::opt_saving(fl::saving(mocha, cmfl, a))});
  }
  table.print(std::cout);
  std::printf("best cmfl threshold: %.2f\n", sweep[best]);
  std::printf(
      "final accuracy: mocha=%.4f mocha+cmfl=%.4f (ratio %.3fx; paper saw "
      "1.03x-1.04x improvements)\n\n",
      mocha.final_accuracy, cmfl.final_accuracy,
      cmfl.final_accuracy / std::max(mocha.final_accuracy, 1e-9));
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Figure 5 + Table II: CMFL applied to MOCHA\n\n");
  const std::vector<double> sweep = {0.40, 0.45, 0.48, 0.50, 0.52, 0.55, 0.58};

  // --- Human Activity Recognition (paper: 142 clients, 10-100 samples) ---
  {
    util::Rng rng(static_cast<std::uint64_t>(cfg.get_int64("seed", 42)));
    data::SynthHarSpec spec;
    spec.clients = static_cast<std::size_t>(cfg.get_int("har_clients", 60));
    spec.features = static_cast<std::size_t>(cfg.get_int("har_features", 128));
    spec.min_samples = 10;
    spec.max_samples = 100;
    // Harder separation than the defaults so convergence spans tens of
    // rounds — the paper's curves cover thousands of rounds; a task the
    // solver aces in two rounds cannot show communication savings.
    spec.class_separation = 0.8;
    spec.sample_noise_stddev = 0.9;
    data::HarData har = data::make_synth_har(spec, rng);
    MtlWorkload w{std::move(har.dataset), std::move(har.partition), "har"};

    // E = 1 (the paper used E = 10 with its CoCoA-style solver; our plain
    // SGD solver makes far more progress per epoch, so one epoch per round
    // keeps convergence spread over tens of rounds as in the paper's
    // curves).
    mtl::MtlOptions opt;
    opt.local_epochs = cfg.get_int("epochs", 1);
    opt.batch_size = static_cast<std::size_t>(cfg.get_int("batch", 5));
    opt.learning_rate = static_cast<float>(cfg.get_double("lr", 0.01));
    opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 80));
    opt.eval_every = 1;
    opt.lambda = 0.1;
    opt.seed = 11;
    report(w, opt, cfg.get_double("har_target_low", 0.66),
           cfg.get_double("har_target_high", 0.70), sweep);
  }

  // --- Semeion Handwritten Digit (paper: 15 clients, 10-200 samples) ---
  {
    util::Rng rng(static_cast<std::uint64_t>(cfg.get_int64("seed", 42)) + 1);
    data::SynthSemeionSpec spec;
    spec.samples = static_cast<std::size_t>(cfg.get_int("shd_samples", 1593));
    spec.flip_probability = 0.06;  // noisier pixels: slower convergence
    data::DenseDataset ds = data::make_synth_semeion(spec, rng);
    const std::size_t clients =
        static_cast<std::size_t>(cfg.get_int("shd_clients", 15));
    data::Partition partition = data::random_sized_partition(
        ds.size(), clients, 10, 200, rng);
    MtlWorkload w{std::move(ds), std::move(partition), "semeion"};

    // Targets sit above the ~90% all-negative base rate of the zero-vs-rest
    // task, so reaching them requires actually detecting zeros.
    mtl::MtlOptions opt;
    opt.local_epochs = cfg.get_int("epochs", 1);
    opt.batch_size = static_cast<std::size_t>(cfg.get_int("batch", 5));
    opt.learning_rate = static_cast<float>(cfg.get_double("shd_lr", 0.005));
    opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 80));
    opt.eval_every = 1;
    opt.lambda = 0.05;
    opt.seed = 13;
    report(w, opt, cfg.get_double("shd_target_low", 0.92),
           cfg.get_double("shd_target_high", 0.93), sweep);
  }

  std::printf(
      "paper shape: MOCHA+CMFL reaches each target accuracy with multi-x "
      "fewer accumulated rounds (paper: 4.3x/5.7x on HAR, 1.97x/3.3x on "
      "Semeion) and equal-or-better final accuracy\n");
  bench::warn_unused(cfg);
  return 0;
}

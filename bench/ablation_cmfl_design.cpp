// Ablations of CMFL's design choices (DESIGN.md §6), on the fast MLP
// workload so the whole study runs in about a minute:
//
//   A. Feedback estimator: previous-update (paper) vs EMA-smoothed vs no
//      feedback at all (threshold 0 ⇒ vanilla) — does the simple
//      previous-update estimate suffice?
//   B. Threshold schedule: constant vs v0/sqrt(t) vs v0/t.
//   C. Data distribution: label-sorted non-IID (paper protocol) vs IID —
//      CMFL's value should come from non-IID outliers; under IID all
//      updates are relevant and filtering gains little.
#include "bench_common.h"

using namespace cmfl;

namespace {

fl::DigitsMlpSpec mlp_spec(const util::Config& cfg,
                           const std::string& partition) {
  fl::DigitsMlpSpec spec;
  spec.clients = static_cast<std::size_t>(cfg.get_int("clients", 30));
  spec.train_samples = spec.clients * 30;
  spec.test_samples = 300;
  spec.hidden = {32};
  spec.digits.image_size = 12;
  spec.digits.noise_stddev = 0.25f;
  spec.digits.noise_density = 0.15f;
  spec.partition = partition;
  spec.seed = static_cast<std::uint64_t>(cfg.get_int64("seed", 42));
  return spec;
}

fl::SimulationOptions mlp_options(const util::Config& cfg) {
  fl::SimulationOptions opt;
  opt.local_epochs = 4;
  opt.batch_size = 2;
  opt.learning_rate = core::Schedule::inv_sqrt(cfg.get_double("lr", 0.3));
  opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 50));
  opt.eval_every = 1;
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Ablation study: CMFL design choices (digits MLP)\n\n");
  const double target = cfg.get_double("target", 0.7);
  const double threshold = cfg.get_double("threshold", 0.42);

  // --- A: estimator variants ---
  {
    auto opt = mlp_options(cfg);
    const auto spec = mlp_spec(cfg, "label_sorted");
    auto make = [&] { return fl::make_digits_mlp_workload(spec); };
    const auto vanilla =
        bench::run_scheme(make, "vanilla", core::Schedule::constant(0), opt);
    util::Table table(
        {"estimator", "rounds to target", "saving", "final acc"});
    auto add = [&](const char* name, double ema) {
      auto o = opt;
      o.estimator_ema = ema;
      const auto r = bench::run_scheme(
          make, "cmfl", core::Schedule::constant(threshold), o);
      table.add_row({name, bench::opt_rounds(r.rounds_to_accuracy(target)),
                     bench::opt_saving(fl::saving(vanilla, r, target)),
                     util::fmt(r.final_accuracy, 3)});
    };
    table.add_row({"(vanilla, no filtering)",
                   bench::opt_rounds(vanilla.rounds_to_accuracy(target)),
                   "1.00x", util::fmt(vanilla.final_accuracy, 3)});
    add("previous update (paper)", 0.0);
    add("EMA decay 0.5", 0.5);
    add("EMA decay 0.9", 0.9);
    std::printf("## A. global-update estimator (threshold %.2f)\n",
                threshold);
    table.print(std::cout);
    std::printf("\n");
  }

  // --- B: threshold schedules ---
  {
    auto opt = mlp_options(cfg);
    const auto spec = mlp_spec(cfg, "label_sorted");
    auto make = [&] { return fl::make_digits_mlp_workload(spec); };
    const auto vanilla =
        bench::run_scheme(make, "vanilla", core::Schedule::constant(0), opt);
    util::Table table(
        {"schedule", "rounds to target", "saving", "final acc"});
    for (const auto& [name, sched] :
         std::vector<std::pair<std::string, core::Schedule>>{
             {"constant " + util::fmt(threshold, 2),
              core::Schedule::constant(threshold)},
             {"0.8/sqrt(t) (paper)", core::Schedule::inv_sqrt(0.8)},
             {"0.8/t", core::Schedule::inv_linear(0.8)}}) {
      const auto r = bench::run_scheme(make, "cmfl", sched, opt);
      table.add_row({name, bench::opt_rounds(r.rounds_to_accuracy(target)),
                     bench::opt_saving(fl::saving(vanilla, r, target)),
                     util::fmt(r.final_accuracy, 3)});
    }
    std::printf("## B. threshold schedule\n");
    table.print(std::cout);
    std::printf("\n");
  }

  // --- C: non-IID vs IID ---
  // Observe-only runs (threshold 0 never filters) show the relevance level
  // per distribution; filtered runs show what a fixed threshold then does.
  // Finding at this scale: under the paper's non-IID protocol the filter
  // trims a modest share of weakly-aligned uploads harmlessly, while under
  // IID the same threshold triggers a starvation spiral (uploaded subset
  // biases ū, relevance of the rest drops further) that breaks training —
  // CMFL's threshold must be tuned to the population, exactly why the paper
  // sweeps it per workload.
  {
    auto opt = mlp_options(cfg);
    util::Table table({"partition", "mean relevance (t=2..)",
                       "min iteration mean",
                       "uploads eliminated @" + util::fmt(threshold, 2),
                       "filtered final acc"});
    for (const char* partition : {"label_sorted", "iid"}) {
      const auto spec = mlp_spec(cfg, partition);
      auto make = [&] { return fl::make_digits_mlp_workload(spec); };
      const auto observe = bench::run_scheme(
          make, "cmfl", core::Schedule::constant(0.0), opt);
      // Count would-be eliminations with a real threshold, from a second
      // filtered run.
      const auto filtered = bench::run_scheme(
          make, "cmfl", core::Schedule::constant(threshold), opt);
      double mean = 0.0, min_mean = 1.0;
      std::size_t counted = 0;
      for (const auto& rec : observe.history) {
        if (rec.iteration < 2) continue;
        mean += rec.mean_score;
        min_mean = std::min(min_mean, rec.mean_score);
        ++counted;
      }
      mean /= static_cast<double>(std::max<std::size_t>(counted, 1));
      std::size_t eliminated = 0;
      for (std::size_t e : filtered.eliminations_per_client) eliminated += e;
      const double share =
          static_cast<double>(eliminated) /
          static_cast<double>(filtered.total_rounds + eliminated);
      table.add_row({partition, util::fmt(mean, 3), util::fmt(min_mean, 3),
                     util::fmt(share * 100, 1) + "%",
                     util::fmt(filtered.final_accuracy, 3)});
    }
    std::printf("## C. data distribution (observe-only relevance)\n");
    table.print(std::cout);
  }
  bench::warn_unused(cfg);
  return 0;
}

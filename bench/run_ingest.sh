#!/usr/bin/env sh
# Records the sharded-ingest throughput baseline BENCH_ingest.json at the
# repo root from a Release build, verifies the S=8 scaling acceptance gate,
# then re-runs the `ingest`-labeled test suite (sharded aggregator
# bit-identity, work-stealing pool, concurrent warm-pool LRU, engine and
# cluster sharding) under ThreadSanitizer and under ASan+UBSan.
#
#   bench/run_ingest.sh [build_dir] [--benchmark_* flags...]
#
# The build dir (default build-release/) is configured
# -DCMAKE_BUILD_TYPE=Release; the script verifies the binary's own
# build-type stamp in the recorded JSON (custom context `cmfl_build_type`)
# and fails loudly on a mismatch, and requires the `cmfl_simd` stamp so a
# baseline is never compared across SIMD tiers unknowingly.
#
# Scaling gate: BM_IngestBurst at S=8 must ingest >= 3x the uploads/sec of
# S=1 — but only on a host that can physically run 8 shard workers
# concurrently.  The binary stamps `cmfl_host_cpus`
# (std::thread::hardware_concurrency) into the JSON; below 8 CPUs the gate
# is skipped with a loud warning so a laptop/CI recording is never mistaken
# for a scaling validation.  Re-record on a >= 8-core host before citing
# the scaling numbers.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="$REPO_ROOT/build-release"
case "${1:-}" in
  --*) ;;                        # first arg is a benchmark flag, keep default
  "") ;;
  *) BUILD_DIR=$1; shift ;;
esac

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_ingest

OUT="$REPO_ROOT/BENCH_ingest.json"
"$BUILD_DIR/bench/bench_ingest" --benchmark_out="$OUT" \
                                --benchmark_out_format=json "$@"

if ! grep -q '"cmfl_build_type": "Release"' "$OUT"; then
  echo "ERROR: $OUT was not recorded from a Release build" >&2
  echo "       (cmfl_build_type context: $(grep -o '"cmfl_build_type":[^,]*' "$OUT" || echo missing))" >&2
  exit 1
fi
if ! grep -q '"cmfl_simd": "' "$OUT"; then
  echo "ERROR: $OUT carries no cmfl_simd provenance stamp" >&2
  exit 1
fi
SIMD=$(grep -o '"cmfl_simd": "[^"]*"' "$OUT" | cut -d'"' -f4)
echo "wrote $OUT (Release provenance verified, simd=$SIMD)"

# --- S=8 vs S=1 scaling gate (>= 8-core hosts only) ---
python3 - "$OUT" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    doc = json.load(f)
cpus = int(doc["context"].get("cmfl_host_cpus", "0"))

def uploads_per_s(shards):
    name = f"BM_IngestBurst/{shards}/real_time"
    for b in doc["benchmarks"]:
        if b["name"] == name and b.get("run_type") != "aggregate":
            return b["uploads_per_s"]
    raise SystemExit(f"ERROR: {name} missing from {sys.argv[1]}")

s1, s8 = uploads_per_s(1), uploads_per_s(8)
ratio = s8 / s1 if s1 > 0 else 0.0
print(f"ingest scaling: S=1 {s1:.0f} uploads/s, S=8 {s8:.0f} uploads/s "
      f"({ratio:.2f}x) on a {cpus}-CPU host")
if cpus >= 8:
    if ratio < 3.0:
        raise SystemExit(
            f"ERROR: S=8 ingest is only {ratio:.2f}x S=1 (gate: >= 3x on a "
            f"{cpus}-CPU host)")
    print("scaling gate PASSED (>= 3x)")
else:
    print("*" * 72)
    print(f"WARNING: host has only {cpus} CPUs — 8 shard workers cannot run")
    print("WARNING: concurrently, so the >= 3x S=8 scaling gate was SKIPPED.")
    print("WARNING: This baseline records single-core behavior only; re-run")
    print("WARNING: bench/run_ingest.sh on a >= 8-core host to validate the")
    print("WARNING: scaling claim before citing these numbers.")
    print("*" * 72)
EOF

# --- TSan gate over the ingest test suite ---
# The ingest pipeline is the most concurrent code in the tree (shard worker
# threads, the work-stealing pool, deferred warm-pool releases); the suite
# must be data-race-free before a baseline recorded from this tree is
# accepted.
TSAN_DIR="${BUILD_DIR}-tsan"
cmake -B "$TSAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMFL_SANITIZE=thread
cmake --build "$TSAN_DIR" -j --target \
      test_fl_shard test_sched_work_pool test_sched_population \
      test_sched_round_engine
(cd "$TSAN_DIR" && ctest -L ingest --output-on-failure)
echo "TSan ingest gates passed"

# --- ASan+UBSan gate over the same suite ---
ASAN_DIR="${BUILD_DIR}-asan-ubsan"
cmake -B "$ASAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMFL_SANITIZE=address,undefined
cmake --build "$ASAN_DIR" -j --target \
      test_fl_shard test_sched_work_pool test_sched_population \
      test_sched_round_engine
(cd "$ASAN_DIR" && ctest -L ingest --output-on-failure)
echo "ASan+UBSan ingest gates passed"

// Figure 1: CDF of the Normalized Model Divergence d_j (Eq. 7) between
// client-side and global models, for the digits-CNN and NWP-LSTM workloads.
//
// Paper's observation: "more than 50% of parameters in both models produce
// model divergence higher than 100%", with maxima of 268 and 175.  This
// bench trains both workloads federated for a fixed number of rounds,
// snapshots every client's local model, computes d_j per parameter, and
// prints the two CDFs plus the headline statistics.
#include "bench_common.h"

#include "fl/divergence.h"

using namespace cmfl;

namespace {

struct DivergenceReport {
  std::vector<double> d;
  double frac_above_1 = 0.0;  // fraction of parameters with d_j > 100%
  double max = 0.0;
};

DivergenceReport analyze(const fl::SimulationResult& result) {
  DivergenceReport rep;
  rep.d = fl::normalized_model_divergence(result.final_params,
                                          result.client_params);
  std::size_t above = 0;
  for (double v : rep.d) {
    if (v > 1.0) ++above;
    rep.max = std::max(rep.max, v);
  }
  rep.frac_above_1 =
      rep.d.empty() ? 0.0
                    : static_cast<double>(above) /
                          static_cast<double>(rep.d.size());
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Figure 1: Normalized Model Divergence CDF (Eq. 7)\n");

  // --- digits CNN ---
  // Divergence is measured mid-training with a non-decayed learning rate
  // and the paper's heavy local work (multiple epochs over a 1-2 class
  // shard) — the regime where client drift is visible.
  auto cnn_spec = bench::digits_cnn_spec(cfg);
  auto cnn_opt = bench::digits_cnn_options(cfg);
  cnn_opt.local_epochs = cfg.get_int("epochs", 8);
  cnn_opt.learning_rate = core::Schedule::constant(cfg.get_double("lr", 0.15));
  cnn_opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 25));
  cnn_opt.eval_every = cnn_opt.max_iterations;
  cnn_opt.capture_client_params = true;
  const auto cnn_result = bench::run_scheme(
      [&] { return fl::make_digits_cnn_workload(cnn_spec); }, "vanilla",
      core::Schedule::constant(0), cnn_opt);
  const DivergenceReport cnn = analyze(cnn_result);

  // --- NWP LSTM ---
  auto nwp_spec = bench::nwp_lstm_spec(cfg);
  auto nwp_opt = bench::nwp_lstm_options(cfg);
  nwp_opt.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 25));
  nwp_opt.eval_every = nwp_opt.max_iterations;
  nwp_opt.capture_client_params = true;
  const auto nwp_result = bench::run_scheme(
      [&] { return fl::make_nwp_lstm_workload(nwp_spec); }, "vanilla",
      core::Schedule::constant(0), nwp_opt);
  const DivergenceReport nwp = analyze(nwp_result);

  bench::print_cdf("digits_cnn", stats::Cdf(cnn.d));
  bench::print_cdf("nwp_lstm", stats::Cdf(nwp.d));

  util::Table table({"model", "params analyzed", "median d_j",
                     "frac d_j > 100%", "max d_j"});
  const stats::Cdf cnn_cdf(cnn.d);
  const stats::Cdf nwp_cdf(nwp.d);
  table.add_row({"digits_cnn (MNIST-CNN stand-in)",
                 std::to_string(cnn.d.size()), util::fmt(cnn_cdf.median(), 2),
                 util::fmt(cnn.frac_above_1 * 100, 1) + "%",
                 util::fmt(cnn.max, 1)});
  table.add_row({"nwp_lstm (Shakespeare stand-in)",
                 std::to_string(nwp.d.size()), util::fmt(nwp_cdf.median(), 2),
                 util::fmt(nwp.frac_above_1 * 100, 1) + "%",
                 util::fmt(nwp.max, 1)});
  table.print(std::cout);
  std::printf(
      "\npaper: >50%% of parameters above 100%% divergence in both models; "
      "maxima 268 / 175\n");
  bench::warn_unused(cfg);
  return 0;
}

// Figure 7: the "EC2 deployment" reproduced over the in-process
// master/worker cluster — 30 worker threads running the NWP LSTM behind a
// byte-exact wire protocol (see DESIGN.md §5 for the substitution).
//
//  (a) accuracy vs accumulated upload rounds for FL / Gaia / CMFL;
//  (b) cumulative uplink bytes when each accuracy level is first reached —
//      the network-footprint reduction (paper: 7.1x / 6.4x / 6.9x).
#include "bench_common.h"

#include "net/cluster.h"

using namespace cmfl;

namespace {

net::ClusterResult run_cluster(const fl::NwpLstmSpec& spec,
                               const net::ClusterOptions& opt,
                               const std::string& kind,
                               core::Schedule threshold) {
  fl::Workload w = fl::make_nwp_lstm_workload(spec);
  net::FlCluster cluster(std::move(w.clients),
                         core::make_filter(kind, threshold), w.evaluator,
                         opt);
  return cluster.run();
}

/// Cumulative uplink bytes when accuracy `a` is first reached.
std::optional<std::uint64_t> bytes_to_accuracy(const net::ClusterResult& r,
                                               double a) {
  for (const auto& p : r.footprint) {
    if (p.accuracy >= a) return p.uplink_bytes;
  }
  return std::nullopt;
}

std::string opt_bytes(const std::optional<std::uint64_t>& v) {
  return v ? util::fmt_count(static_cast<long long>(*v)) : "not reached";
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = util::Config::from_args(argc, argv);
  std::printf("# Figure 7: cluster emulation (30 workers, NWP LSTM)\n\n");

  auto spec = bench::nwp_lstm_spec(cfg);
  spec.text.roles = static_cast<std::size_t>(cfg.get_int("workers", 30));

  net::ClusterOptions opt;
  opt.fl = bench::nwp_lstm_options(cfg);
  // All three schemes plateau by ~iteration 14 at this scale; the run ends
  // at the plateau (the paper's EC2 runs similarly end at convergence).
  opt.fl.max_iterations = static_cast<std::size_t>(cfg.get_int("iters", 15));
  opt.fl.eval_every = 1;
  // Edge-like link model for the simulated-transfer-time report.
  opt.uplink.latency_s = 0.05;
  opt.uplink.bandwidth_bytes_per_s = 1.0e6;
  opt.downlink.latency_s = 0.05;
  opt.downlink.bandwidth_bytes_per_s = 4.0e6;

  const auto vanilla =
      run_cluster(spec, opt, "vanilla", core::Schedule::constant(0));
  const auto gaia = run_cluster(
      spec, opt, "gaia",
      core::Schedule::constant(cfg.get_double("gaia_threshold", 0.2)));
  // CMFL threshold: a slowly decaying schedule (v0/t^p with small p) tracks
  // the relevance band as it drifts down over training, keeping the filter
  // selective for the whole run (constant thresholds either never fire or
  // starve the tail; see the fig4 sweep).
  const auto cmfl = run_cluster(
      spec, opt, "cmfl",
      core::Schedule::inv_pow(cfg.get_double("cmfl_threshold", 0.55),
                              cfg.get_double("cmfl_decay_pow", 0.02)));

  // --- Fig. 7a: accuracy vs rounds ---
  bench::print_curve("ec2,vanilla", vanilla.sim);
  bench::print_curve("ec2,gaia", gaia.sim);
  bench::print_curve("ec2,cmfl", cmfl.sim);

  // --- Fig. 7b: uploaded bytes at accuracy levels ---
  const double a1 = cfg.get_double("acc1", 0.15);
  const double a2 = cfg.get_double("acc2", 0.20);
  const double a3 = cfg.get_double("acc3", 0.23);
  util::Table table({"accuracy", "vanilla bytes", "gaia bytes",
                     "cmfl bytes", "cmfl reduction"});
  for (double a : {a1, a2, a3}) {
    const auto vb = bytes_to_accuracy(vanilla, a);
    const auto cb = bytes_to_accuracy(cmfl, a);
    std::string reduction = "-";
    if (vb && cb && *cb > 0) {
      reduction = util::fmt(static_cast<double>(*vb) /
                                static_cast<double>(*cb),
                            2) +
                  "x";
    }
    table.add_row({util::fmt(a * 100, 0) + "%", opt_bytes(vb),
                   opt_bytes(bytes_to_accuracy(gaia, a)), opt_bytes(cb),
                   reduction});
  }
  table.print(std::cout);

  // --- Totals and message accounting ---
  util::Table totals({"scheme", "upload msgs", "elim msgs", "uplink bytes",
                      "downlink bytes", "sim transfer (s)", "final acc"});
  auto row = [&](const char* name, const net::ClusterResult& r) {
    totals.add_row({name,
                    util::fmt_count(static_cast<long long>(r.upload_messages)),
                    util::fmt_count(
                        static_cast<long long>(r.elimination_messages)),
                    util::fmt_count(static_cast<long long>(r.uplink_bytes)),
                    util::fmt_count(static_cast<long long>(r.downlink_bytes)),
                    util::fmt(r.simulated_transfer_seconds, 1),
                    util::fmt(r.sim.final_accuracy, 3)});
  };
  row("vanilla", vanilla);
  row("gaia", gaia);
  row("cmfl", cmfl);
  std::printf("\n");
  totals.print(std::cout);
  std::printf(
      "\npaper shape: CMFL reaches each accuracy level with several-x fewer "
      "uploaded bytes (paper: 7.1x/6.4x/6.9x); the elimination frames it "
      "sends instead are negligible in size\n");
  bench::warn_unused(cfg);
  return 0;
}

// Codec-layer throughput benchmarks (google-benchmark): encode and decode
// rates for every production codec, plus the wire footprint each leaves.
//
// Rows report GB/s over the dense float32 update scanned per call, and two
// counters: `wire_bytes` (the encoded payload for the benchmarked dim) and
// `ratio` (dense bytes / encoded bytes — the bits-per-upload savings axis
// that multiplies with CMFL's uploads-per-round axis).  Stateful codecs
// (top-k residual, quant RNG, codebook refresh) run their real streams, so
// the rows price the production path, not a stateless idealization.
//
// `bench/run_codec.sh` records the tracked baseline BENCH_codec.json at the
// repo root from a Release build and then re-runs the `codec`-labeled test
// suite (round-trip + exhaustive malformed-payload matrices) under
// ASan+UBSan before the baseline is accepted.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "codec/codec.h"
#include "tensor/kernels.h"
#include "util/rng.h"

using namespace cmfl;

namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-0.5f, 0.5f);
  return v;
}

void encode_bench(benchmark::State& state, const char* spec) {
  const auto d = static_cast<std::size_t>(state.range(0));
  auto codec = codec::make_update_codec(spec, 1);
  const auto u = random_vec(d, 3);
  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    const auto enc = codec->encode(u);
    wire_bytes = enc.wire_bytes();
    benchmark::DoNotOptimize(enc.payload.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * sizeof(float)));
  state.counters["wire_bytes"] = static_cast<double>(wire_bytes);
  state.counters["ratio"] = static_cast<double>(d * sizeof(float)) /
                            static_cast<double>(wire_bytes);
}

void decode_bench(benchmark::State& state, const char* spec) {
  const auto d = static_cast<std::size_t>(state.range(0));
  auto encoder = codec::make_update_codec(spec, 1);
  auto decoder = codec::make_update_codec(spec, 1);
  const auto payload = encoder->encode(random_vec(d, 3)).payload;
  for (auto _ : state) {
    const auto out = decoder->decode(payload);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * sizeof(float)));
  state.counters["wire_bytes"] = static_cast<double>(payload.size());
  state.counters["ratio"] = static_cast<double>(d * sizeof(float)) /
                            static_cast<double>(payload.size());
}

constexpr std::int64_t kDim = 1 << 17;  // a mid-size model's update

void BM_EncodeDense(benchmark::State& s) { encode_bench(s, "dense"); }
BENCHMARK(BM_EncodeDense)->Arg(kDim);
void BM_EncodeSign(benchmark::State& s) { encode_bench(s, "sign"); }
BENCHMARK(BM_EncodeSign)->Arg(kDim);
void BM_EncodeQuant8(benchmark::State& s) { encode_bench(s, "quant:8"); }
BENCHMARK(BM_EncodeQuant8)->Arg(kDim);
void BM_EncodeQuant2(benchmark::State& s) { encode_bench(s, "quant:2"); }
BENCHMARK(BM_EncodeQuant2)->Arg(kDim);
void BM_EncodeTopK1pct(benchmark::State& s) { encode_bench(s, "topk:0.01"); }
BENCHMARK(BM_EncodeTopK1pct)->Arg(kDim);
void BM_EncodeCodebook16(benchmark::State& s) {
  encode_bench(s, "codebook:16,16");
}
BENCHMARK(BM_EncodeCodebook16)->Arg(kDim);
void BM_EncodeSubsample25(benchmark::State& s) {
  encode_bench(s, "subsample:0.25");
}
BENCHMARK(BM_EncodeSubsample25)->Arg(kDim);

void BM_DecodeDense(benchmark::State& s) { decode_bench(s, "dense"); }
BENCHMARK(BM_DecodeDense)->Arg(kDim);
void BM_DecodeSign(benchmark::State& s) { decode_bench(s, "sign"); }
BENCHMARK(BM_DecodeSign)->Arg(kDim);
void BM_DecodeQuant8(benchmark::State& s) { decode_bench(s, "quant:8"); }
BENCHMARK(BM_DecodeQuant8)->Arg(kDim);
void BM_DecodeQuant2(benchmark::State& s) { decode_bench(s, "quant:2"); }
BENCHMARK(BM_DecodeQuant2)->Arg(kDim);
void BM_DecodeTopK1pct(benchmark::State& s) { decode_bench(s, "topk:0.01"); }
BENCHMARK(BM_DecodeTopK1pct)->Arg(kDim);
void BM_DecodeCodebook16(benchmark::State& s) {
  decode_bench(s, "codebook:16,16");
}
BENCHMARK(BM_DecodeCodebook16)->Arg(kDim);
void BM_DecodeSubsample25(benchmark::State& s) {
  decode_bench(s, "subsample:0.25");
}
BENCHMARK(BM_DecodeSubsample25)->Arg(kDim);

}  // namespace

#ifndef CMFL_BUILD_TYPE
#define CMFL_BUILD_TYPE "unknown"
#endif

int main(int argc, char** argv) {
  // Same provenance stamps as bench_kernels: the tracked baseline is gated
  // on this binary's own build type, and cmfl_simd records whether the sign
  // codec's SignPack ran the AVX2 tier on this host.
  benchmark::AddCustomContext("cmfl_build_type", CMFL_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("cmfl_ndebug", "1");
#else
  benchmark::AddCustomContext("cmfl_ndebug", "0");
#endif
  benchmark::AddCustomContext("cmfl_simd", tensor::kernels::simd_level());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

#!/usr/bin/env sh
# Records the kernel-throughput baseline BENCH_kernels.json at the repo root.
#
#   bench/run_kernels.sh [build_dir] [--benchmark_* flags...]
#
# Equivalent CMake target: `cmake --build build --target bench_baseline`.
# Compare a fresh run against the checked-in baseline before merging any
# change that touches tensor/kernels.cpp — regressions must be explained.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="$REPO_ROOT/build"
case "${1:-}" in
  --*) ;;                        # first arg is a benchmark flag, keep default
  "") ;;
  *) BUILD_DIR=$1; shift ;;
esac
BIN="$BUILD_DIR/bench/bench_kernels"

if [ ! -x "$BIN" ]; then
  echo "bench_kernels not built at $BIN — run: cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

"$BIN" --benchmark_out="$REPO_ROOT/BENCH_kernels.json" \
       --benchmark_out_format=json "$@"
echo "wrote $REPO_ROOT/BENCH_kernels.json"

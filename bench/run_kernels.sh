#!/usr/bin/env sh
# Records the kernel-throughput baseline BENCH_kernels.json at the repo root
# from a Release build.
#
#   bench/run_kernels.sh [build_dir] [--benchmark_* flags...]
#
# The build dir (default build-release/) is configured
# -DCMAKE_BUILD_TYPE=Release; a tracked baseline recorded from a debug or
# unoptimized binary is meaningless, so the script verifies the binary's own
# build-type stamp in the recorded JSON (custom context `cmfl_build_type` —
# the library_build_type key only describes how libbenchmark was compiled)
# and fails loudly on a mismatch.  Compare a fresh run against the
# checked-in baseline before merging any change that touches
# tensor/kernels.cpp — regressions must be explained.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="$REPO_ROOT/build-release"
case "${1:-}" in
  --*) ;;                        # first arg is a benchmark flag, keep default
  "") ;;
  *) BUILD_DIR=$1; shift ;;
esac

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_kernels

OUT="$REPO_ROOT/BENCH_kernels.json"
"$BUILD_DIR/bench/bench_kernels" --benchmark_out="$OUT" \
                                 --benchmark_out_format=json "$@"

if ! grep -q '"cmfl_build_type": "Release"' "$OUT"; then
  echo "ERROR: $OUT was not recorded from a Release build" >&2
  echo "       (cmfl_build_type context: $(grep -o '"cmfl_build_type":[^,]*' "$OUT" || echo missing))" >&2
  exit 1
fi
echo "wrote $OUT (Release provenance verified)"

#!/usr/bin/env sh
# Records the kernel-throughput baseline BENCH_kernels.json at the repo root
# from a Release build, then re-runs the SIMD equivalence tests under
# AddressSanitizer+UBSan.
#
#   bench/run_kernels.sh [build_dir] [--benchmark_* flags...]
#
# The build dir (default build-release/) is configured
# -DCMAKE_BUILD_TYPE=Release; a tracked baseline recorded from a debug or
# unoptimized binary is meaningless, so the script verifies the binary's own
# build-type stamp in the recorded JSON (custom context `cmfl_build_type` —
# the library_build_type key only describes how libbenchmark was compiled;
# with the vendored benchmark_lite it reads "release" by construction) and
# fails loudly on a mismatch.  The JSON also carries a `cmfl_simd` stamp
# ("avx2-fma" or "scalar") recording whether the *_Fast tier rows actually
# ran vector kernels on this host; the script requires the stamp to be
# present.  Compare a fresh run against the checked-in baseline before
# merging any change that touches tensor/kernels*.cpp — regressions must be
# explained.
#
# Thread pinning: the MT roofline rows (BM_GemmNN_MT/N, BM_GemmNN_FastMT/N)
# pin their own worker counts in-process.  Everything else honors the
# CMFL_THREADS environment variable when the kernel thread setting is auto,
# e.g. `CMFL_THREADS=1 bench/run_kernels.sh` for a fully serial record.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="$REPO_ROOT/build-release"
case "${1:-}" in
  --*) ;;                        # first arg is a benchmark flag, keep default
  "") ;;
  *) BUILD_DIR=$1; shift ;;
esac

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target bench_kernels

OUT="$REPO_ROOT/BENCH_kernels.json"
"$BUILD_DIR/bench/bench_kernels" --benchmark_out="$OUT" \
                                 --benchmark_out_format=json "$@"

if ! grep -q '"cmfl_build_type": "Release"' "$OUT"; then
  echo "ERROR: $OUT was not recorded from a Release build" >&2
  echo "       (cmfl_build_type context: $(grep -o '"cmfl_build_type":[^,]*' "$OUT" || echo missing))" >&2
  exit 1
fi
if ! grep -q '"cmfl_simd": "' "$OUT"; then
  echo "ERROR: $OUT carries no cmfl_simd provenance stamp" >&2
  exit 1
fi
SIMD=$(grep -o '"cmfl_simd": "[^"]*"' "$OUT" | cut -d'"' -f4)
echo "wrote $OUT (Release provenance verified, simd=$SIMD)"

# --- ASan+UBSan gate over the SIMD equivalence tests ---
# The fast-tier kernels read with vector loads near buffer tails; the
# equivalence suites must stay clean under address+undefined before a
# baseline recorded from them is accepted.
ASAN_DIR="${BUILD_DIR}-asan-ubsan"
cmake -B "$ASAN_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DCMFL_SANITIZE=address,undefined
cmake --build "$ASAN_DIR" -j --target test_tensor_simd test_tensor_kernels
"$ASAN_DIR/tests/test_tensor_simd"
"$ASAN_DIR/tests/test_tensor_kernels"
echo "ASan+UBSan SIMD equivalence gates passed"

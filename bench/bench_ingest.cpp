// Sharded-ingest throughput benchmarks (google-benchmark): the concurrent
// upload pipeline of DESIGN.md §17 under an over-selected cohort burst.
//
// Rows:
//   * BM_ScalarInline     — the exact per-upload scalar work (finiteness
//                           scan, serial double-accumulation L2 norm, CMFL
//                           sign-agreement count) run inline on the caller
//                           thread: the single-master baseline an S-shard
//                           pipeline divides.
//   * BM_IngestBurst/S    — a 96-upload over-selected burst submitted to a
//                           ShardedAggregator at S shards and collected in
//                           index order; `uploads_per_s` is the headline
//                           scaling axis (≥3× at S=8 vs S=1 on a host with
//                           ≥8 cores — run_ingest.sh gates on this, and
//                           stamps `cmfl_host_cpus` so a single-core
//                           recording is never mistaken for a scaling run).
//   * BM_CommitRound/S    — the full commit cycle: scalar pass, screen,
//                           then the range-parallel aggregate fan-out into
//                           the global update (`rounds_per_s`).
//   * BM_MeterPadded/BM_MeterPacked — the ByteMeter false-sharing micro
//                           row: T threads each hammering their own meter.
//                           Padded = the real alignas(64) ByteMeter (one
//                           cache line per meter); Packed = adjacent 8-byte
//                           atomics sharing lines, the layout ByteMeter
//                           would have without the alignment.  On a
//                           multi-core host the packed row's line ping-pong
//                           costs several × the padded rate.
//
// All pipeline rows use real time: the work happens on shard worker
// threads while the submitting thread blocks in collect(), so CPU time of
// the main thread alone would be meaningless.
//
// `bench/run_ingest.sh` records the tracked baseline BENCH_ingest.json at
// the repo root from a Release build, verifies the provenance stamps and
// the S=8 scaling gate, then re-runs the `ingest`-labeled test suite under
// ThreadSanitizer and ASan+UBSan before the baseline is accepted.
#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fl/robust_agg.h"
#include "fl/shard.h"
#include "net/link.h"
#include "tensor/kernels.h"
#include "util/rng.h"

using namespace cmfl;

namespace {

constexpr std::size_t kDim = 1 << 16;  // 64k params — a mid-size update
constexpr std::size_t kBurst = 96;     // over-selected cohort (1.5 × 64)

std::vector<std::vector<float>> make_burst(std::size_t count,
                                           std::size_t dim) {
  std::vector<std::vector<float>> burst(count);
  for (std::size_t i = 0; i < count; ++i) {
    util::Rng rng(1000 + i);
    burst[i].resize(dim);
    for (auto& x : burst[i]) x = rng.uniform_f(-0.5f, 0.5f);
  }
  return burst;
}

tensor::SignPack make_estimate(std::size_t dim) {
  util::Rng rng(7);
  std::vector<float> est(dim);
  for (auto& x : est) x = rng.uniform_f(-0.5f, 0.5f);
  tensor::SignPack pack;
  pack.assign(est);
  return pack;
}

/// The serial single-master scalar pass, for the baseline row.
void scalar_pass_inline(std::span<const float> u,
                        const tensor::SignPack& estimate) {
  benchmark::DoNotOptimize(fl::update_all_finite(u));
  benchmark::DoNotOptimize(fl::update_l2_norm(u));
  benchmark::DoNotOptimize(tensor::count_sign_matches(u, estimate));
}

void BM_ScalarInline(benchmark::State& state) {
  const auto burst = make_burst(kBurst, kDim);
  const auto estimate = make_estimate(kDim);
  for (auto _ : state) {
    for (const auto& u : burst) scalar_pass_inline(u, estimate);
  }
  state.counters["uploads_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kBurst),
      benchmark::Counter::kIsRate);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst * kDim *
                                                    sizeof(float)));
}
BENCHMARK(BM_ScalarInline)->UseRealTime();

void BM_IngestBurst(benchmark::State& state) {
  fl::ShardOptions so;
  so.shards = static_cast<std::size_t>(state.range(0));
  fl::ShardedAggregator agg(kDim, so);
  const auto burst = make_burst(kBurst, kDim);
  const auto estimate = make_estimate(kDim);
  for (auto _ : state) {
    agg.begin_batch(kBurst);
    for (std::size_t i = 0; i < kBurst; ++i) {
      agg.submit_update(i, burst[i], &estimate, kDim * sizeof(float));
    }
    const auto results = agg.collect(kBurst);
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["uploads_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kBurst),
      benchmark::Counter::kIsRate);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBurst * kDim *
                                                    sizeof(float)));
}
BENCHMARK(BM_IngestBurst)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_CommitRound(benchmark::State& state) {
  fl::ShardOptions so;
  so.shards = static_cast<std::size_t>(state.range(0));
  fl::ShardedAggregator agg(kDim, so);
  const auto burst = make_burst(kBurst, kDim);
  const auto estimate = make_estimate(kDim);
  std::vector<std::span<const float>> views(burst.begin(), burst.end());
  std::vector<float> global_update(kDim);
  const fl::RobustAggOptions ropt;
  for (auto _ : state) {
    agg.begin_batch(kBurst);
    for (std::size_t i = 0; i < kBurst; ++i) {
      agg.submit_update(i, burst[i], &estimate, kDim * sizeof(float));
    }
    const auto results = agg.collect(kBurst);
    for (const auto& r : results) {
      benchmark::DoNotOptimize(r.scalars.finite);
    }
    agg.aggregate(fl::Aggregation::kUniformMean, views, {}, ropt, {},
                  global_update);
    benchmark::DoNotOptimize(global_update.data());
  }
  state.counters["rounds_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["uploads_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kBurst),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CommitRound)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// --- ByteMeter false-sharing micro row -----------------------------------
//
// benchmark_lite has no ->Threads() support, so each iteration spawns its
// own worker threads inside the timed body: T threads × kMeterOps record()
// calls each, joined before the iteration ends.  The spawn/join cost is
// identical across the padded and packed rows, so the ratio isolates the
// cache-line effect; kMeterOps is large enough that the atomic traffic
// dominates.

constexpr std::size_t kMeterThreads = 4;
constexpr std::size_t kMeterOps = 1 << 16;

void BM_MeterPadded(benchmark::State& state) {
  // One alignas(64) ByteMeter per thread: each meter owns its cache line.
  std::vector<net::ByteMeter> meters(kMeterThreads);
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(kMeterThreads);
    for (std::size_t t = 0; t < kMeterThreads; ++t) {
      workers.emplace_back([&meters, t] {
        for (std::size_t i = 0; i < kMeterOps; ++i) meters[t].record(128);
      });
    }
    for (auto& w : workers) w.join();
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(kMeterThreads * kMeterOps),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeterPadded)->UseRealTime();

void BM_MeterPacked(benchmark::State& state) {
  // The layout ByteMeter would have without alignas(64): adjacent 8-byte
  // counters, eight per cache line, every increment invalidating the
  // neighbors' lines.  Two fetch_adds mirror record()'s bytes + messages.
  auto packed =
      std::make_unique<std::array<std::atomic<std::uint64_t>,
                                  kMeterThreads * 2>>();
  for (auto& a : *packed) a.store(0, std::memory_order_relaxed);
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(kMeterThreads);
    for (std::size_t t = 0; t < kMeterThreads; ++t) {
      workers.emplace_back([&packed, t] {
        auto& bytes = (*packed)[t * 2];
        auto& messages = (*packed)[t * 2 + 1];
        for (std::size_t i = 0; i < kMeterOps; ++i) {
          bytes.fetch_add(128, std::memory_order_relaxed);
          messages.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  state.counters["records_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(kMeterThreads * kMeterOps),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MeterPacked)->UseRealTime();

}  // namespace

#ifndef CMFL_BUILD_TYPE
#define CMFL_BUILD_TYPE "unknown"
#endif

int main(int argc, char** argv) {
  // Same provenance stamps as bench_kernels/bench_codec, plus the host CPU
  // count: the S-scaling rows only mean anything on a host that can
  // actually run the shards concurrently, so run_ingest.sh reads
  // cmfl_host_cpus before enforcing the ≥3× gate.
  benchmark::AddCustomContext("cmfl_build_type", CMFL_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("cmfl_ndebug", "1");
#else
  benchmark::AddCustomContext("cmfl_ndebug", "0");
#endif
  benchmark::AddCustomContext("cmfl_simd", tensor::kernels::simd_level());
  benchmark::AddCustomContext(
      "cmfl_host_cpus",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

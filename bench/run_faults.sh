#!/usr/bin/env sh
# ASan smoke run of the fault-tolerant net stack.
#
#   bench/run_faults.sh [build_dir]
#
# Configures a separate sanitized build tree (default build-asan/), builds
# the four net-layer test binaries, and runs them under AddressSanitizer.
# The fault-injected cluster protocol is the most concurrent code in the
# repo — worker threads, deadline-bounded receives, retransmissions — so it
# gets a sanitizer pass on every protocol change.
#
# For ThreadSanitizer instead (slower, catches data races rather than
# memory errors), configure with:
#   cmake -B build-tsan -S . -DCMFL_SANITIZE=thread
#   cmake --build build-tsan -j --target test_net_wire test_net_link \
#         test_net_fault test_net_cluster
#   for t in wire link fault cluster; do build-tsan/tests/test_net_$t; done
# TSan slows the tests ~10x; the round deadlines in the cluster tests are
# sized so that margin still holds.
set -eu

REPO_ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD_DIR="${1:-$REPO_ROOT/build-asan}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMFL_SANITIZE=address \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j --target \
      test_net_wire test_net_link test_net_fault test_net_cluster

for t in wire link fault cluster; do
  echo "== test_net_$t (ASan) =="
  "$BUILD_DIR/tests/test_net_$t"
done
echo "all net tests clean under AddressSanitizer"

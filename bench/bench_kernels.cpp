// Kernel-layer throughput benchmarks (google-benchmark): old vs new paths.
//
// GEMM benchmarks report GFLOP/s (2·m·n·k flops per product); sign-match
// benchmarks report GB/s over the two float vectors scanned per check.  The
// *_Ref variants run the naive seed kernels kept in kernels.cpp, so a single
// run shows the old-vs-new ratio directly.  `bench/run_kernels.sh` (or the
// `bench_baseline` CMake target) records the JSON baseline BENCH_kernels.json
// at the repo root; later PRs compare against it before touching a kernel.
//
// Tier rows (DESIGN.md §13): un-suffixed benchmarks pin Tier::kExact and one
// worker, so the tracked baseline stays the bit-exact single-threaded
// kernels.  *_Fast rows pin Tier::kFast (AVX2/FMA; absent hosts silently
// fall back to kExact — check the cmfl_simd context stamp).  *MT rows sweep
// the worker count via ->Arg(threads) at a fixed 256³ GEMM so one JSON holds
// the single- and multi-threaded roofline.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/kernels.h"
#include "tensor/matrix.h"
#include "tensor/vector_ops.h"
#include "util/rng.h"

using namespace cmfl;

namespace {

/// Pins (tier, worker count) for one benchmark body and restores the auto
/// defaults after, so rows never leak configuration into each other.
struct KernelEnv {
  KernelEnv(tensor::kernels::Tier t, std::size_t threads) {
    tensor::kernels::set_tier(t);
    tensor::kernels::set_max_threads(threads);
  }
  ~KernelEnv() {
    tensor::kernels::set_tier(tensor::kernels::Tier::kAuto);
    tensor::kernels::set_max_threads(0);
  }
};

constexpr auto kExact = tensor::kernels::Tier::kExact;
constexpr auto kFast = tensor::kernels::Tier::kFast;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.uniform_f(-1.0f, 1.0f);
  return v;
}

void set_gemm_counters(benchmark::State& state, std::size_t m, std::size_t k,
                       std::size_t n) {
  const double flops_per_iter = 2.0 * static_cast<double>(m) *
                                static_cast<double>(k) *
                                static_cast<double>(n);
  state.counters["GFLOPS"] = benchmark::Counter(
      flops_per_iter * static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

// --- GEMM: C = A·B, square sizes ---

void BM_GemmNN_Ref(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 1), b = random_vec(n * n, 2);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    tensor::kernels::gemm_nn_ref(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNN_Ref)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNN(benchmark::State& state) {
  KernelEnv env(kExact, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n, random_vec(n * n, 1));
  tensor::Matrix b(n, n, random_vec(n * n, 2));
  tensor::Matrix c(n, n);
  for (auto _ : state) {
    tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNN)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNN_Fast(benchmark::State& state) {
  KernelEnv env(kFast, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n, random_vec(n * n, 1));
  tensor::Matrix b(n, n, random_vec(n * n, 2));
  tensor::Matrix c(n, n);
  for (auto _ : state) {
    tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNN_Fast)->Arg(64)->Arg(128)->Arg(256);

// Multi-threaded roofline rows: fixed 256³ product, worker count in the
// benchmark argument.  256³ MACs exceed kParallelMacThreshold, so matmul
// shards rows across the pinned pool.
void BM_GemmNN_MT(benchmark::State& state) {
  KernelEnv env(kExact, static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 256;
  tensor::Matrix a(n, n, random_vec(n * n, 1));
  tensor::Matrix b(n, n, random_vec(n * n, 2));
  tensor::Matrix c(n, n);
  for (auto _ : state) {
    tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNN_MT)->Arg(1)->Arg(2)->Arg(4);

void BM_GemmNN_FastMT(benchmark::State& state) {
  KernelEnv env(kFast, static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 256;
  tensor::Matrix a(n, n, random_vec(n * n, 1));
  tensor::Matrix b(n, n, random_vec(n * n, 2));
  tensor::Matrix c(n, n);
  for (auto _ : state) {
    tensor::matmul(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNN_FastMT)->Arg(1)->Arg(2)->Arg(4);

void BM_GemmNT_Ref(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 3), b = random_vec(n * n, 4);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    tensor::kernels::gemm_nt_ref(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNT_Ref)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  KernelEnv env(kExact, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n, random_vec(n * n, 3));
  tensor::Matrix b(n, n, random_vec(n * n, 4));
  tensor::Matrix c(n, n);
  for (auto _ : state) {
    tensor::matmul_nt(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNT)->Arg(256);

void BM_GemmNT_Fast(benchmark::State& state) {
  KernelEnv env(kFast, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n, random_vec(n * n, 3));
  tensor::Matrix b(n, n, random_vec(n * n, 4));
  tensor::Matrix c(n, n);
  for (auto _ : state) {
    tensor::matmul_nt(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmNT_Fast)->Arg(256);

void BM_GemmTN_Ref(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 5), b = random_vec(n * n, 6);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    tensor::kernels::gemm_tn_ref(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmTN_Ref)->Arg(256);

void BM_GemmTN(benchmark::State& state) {
  KernelEnv env(kExact, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n, random_vec(n * n, 5));
  tensor::Matrix b(n, n, random_vec(n * n, 6));
  tensor::Matrix c(n, n);
  for (auto _ : state) {
    tensor::matmul_tn(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmTN)->Arg(256);

void BM_GemmTN_Fast(benchmark::State& state) {
  KernelEnv env(kFast, 1);
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n, random_vec(n * n, 5));
  tensor::Matrix b(n, n, random_vec(n * n, 6));
  tensor::Matrix c(n, n);
  for (auto _ : state) {
    tensor::matmul_tn(a, b, c);
    benchmark::DoNotOptimize(c.flat().data());
  }
  set_gemm_counters(state, n, n, n);
}
BENCHMARK(BM_GemmTN_Fast)->Arg(256);

// --- Sign agreement: scalar scan vs bit-packed popcount ---

void BM_SignMatchScalar(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto u = random_vec(d, 7), g = random_vec(d, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::count_sign_matches(u, g));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * d * sizeof(float)));
}
BENCHMARK(BM_SignMatchScalar)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

// The server-side steady state: ū packed once per broadcast, each client
// packs only its own update chunk-wise while matching (mixed overload).
void BM_SignMatchPackedVsFloat(benchmark::State& state) {
  KernelEnv env(kExact, 1);
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto u = random_vec(d, 7), g = random_vec(d, 8);
  const tensor::SignPack gp(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::count_sign_matches(u, gp));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * d * sizeof(float)));
}
BENCHMARK(BM_SignMatchPackedVsFloat)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_SignMatchPackedVsFloat_Fast(benchmark::State& state) {
  KernelEnv env(kFast, 1);
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto u = random_vec(d, 7), g = random_vec(d, 8);
  const tensor::SignPack gp(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::count_sign_matches(u, gp));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * d * sizeof(float)));
}
BENCHMARK(BM_SignMatchPackedVsFloat_Fast)
    ->Arg(1 << 14)
    ->Arg(1 << 17)
    ->Arg(1 << 20);

// Both sides pre-packed: pure XOR/AND + popcount over 64-bit words.
void BM_SignMatchPackedVsPacked(benchmark::State& state) {
  KernelEnv env(kExact, 1);
  const auto d = static_cast<std::size_t>(state.range(0));
  const tensor::SignPack up(random_vec(d, 7));
  const tensor::SignPack gp(random_vec(d, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::count_sign_matches(up, gp));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * d * sizeof(float)));
}
BENCHMARK(BM_SignMatchPackedVsPacked)->Arg(1 << 14)->Arg(1 << 17)->Arg(1 << 20);

void BM_SignPackAssign(benchmark::State& state) {
  KernelEnv env(kExact, 1);
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto g = random_vec(d, 8);
  tensor::SignPack pack;
  for (auto _ : state) {
    pack.assign(g);
    benchmark::DoNotOptimize(pack.nonzero_words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * sizeof(float)));
}
BENCHMARK(BM_SignPackAssign)->Arg(1 << 20);

void BM_SignPackAssign_Fast(benchmark::State& state) {
  KernelEnv env(kFast, 1);
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto g = random_vec(d, 8);
  tensor::SignPack pack;
  for (auto _ : state) {
    pack.assign(g);
    benchmark::DoNotOptimize(pack.nonzero_words().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * sizeof(float)));
}
BENCHMARK(BM_SignPackAssign_Fast)->Arg(1 << 20);

// --- Fused server aggregation ---

void BM_AggregateScaledSum(benchmark::State& state) {
  KernelEnv env(kExact, 1);
  const auto d = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kClients = 16;
  std::vector<std::vector<float>> updates;
  updates.reserve(kClients);
  for (std::size_t k = 0; k < kClients; ++k) {
    updates.push_back(random_vec(d, 100 + k));
  }
  std::vector<std::span<const float>> views(updates.begin(), updates.end());
  std::vector<float> out(d);
  for (auto _ : state) {
    tensor::kernels::scaled_sum(views, 1.0f / kClients, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kClients * d * sizeof(float)));
}
BENCHMARK(BM_AggregateScaledSum)->Arg(1 << 17);

void BM_AggregateScaledSum_Fast(benchmark::State& state) {
  KernelEnv env(kFast, 1);
  const auto d = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kClients = 16;
  std::vector<std::vector<float>> updates;
  updates.reserve(kClients);
  for (std::size_t k = 0; k < kClients; ++k) {
    updates.push_back(random_vec(d, 100 + k));
  }
  std::vector<std::span<const float>> views(updates.begin(), updates.end());
  std::vector<float> out(d);
  for (auto _ : state) {
    tensor::kernels::scaled_sum(views, 1.0f / kClients, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kClients * d * sizeof(float)));
}
BENCHMARK(BM_AggregateScaledSum_Fast)->Arg(1 << 17);

void BM_AggregateAxpyThenScale(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kClients = 16;
  std::vector<std::vector<float>> updates;
  updates.reserve(kClients);
  for (std::size_t k = 0; k < kClients; ++k) {
    updates.push_back(random_vec(d, 100 + k));
  }
  std::vector<float> out(d);
  for (auto _ : state) {
    tensor::fill(out, 0.0f);
    for (const auto& u : updates) tensor::axpy(1.0f, u, out);
    tensor::scale(out, 1.0f / kClients);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(kClients * d * sizeof(float)));
}
BENCHMARK(BM_AggregateAxpyThenScale)->Arg(1 << 17);

}  // namespace

#ifndef CMFL_BUILD_TYPE
#define CMFL_BUILD_TYPE "unknown"
#endif

int main(int argc, char** argv) {
  // library_build_type in the JSON describes how *libbenchmark* was
  // compiled (always "debug" for the distro package); the tracked baseline
  // is gated on this binary's own build type instead (run_kernels.sh).
  benchmark::AddCustomContext("cmfl_build_type", CMFL_BUILD_TYPE);
#ifdef NDEBUG
  benchmark::AddCustomContext("cmfl_ndebug", "1");
#else
  benchmark::AddCustomContext("cmfl_ndebug", "0");
#endif
  // SIMD provenance: "avx2-fma" when the fast tier ran, "scalar" when the
  // *_Fast rows silently fell back to the exact kernels on this host.
  benchmark::AddCustomContext("cmfl_simd", tensor::kernels::simd_level());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
